package tmark

import (
	"fmt"
	"sort"

	"tmark/internal/vec"
)

// N returns the number of nodes covered by the result.
func (r *Result) N() int { return r.n }

// M returns the number of relations covered by the result.
func (r *Result) M() int { return r.m }

// Q returns the number of classes covered by the result.
func (r *Result) Q() int { return r.q }

// Scores returns the n×q matrix whose column c is the stationary node
// distribution x̄ of class c: entry (i, c) is the confidence that node i
// belongs to class c.
func (r *Result) Scores() *vec.Matrix {
	s := vec.NewMatrix(r.n, r.q)
	for c := range r.Classes {
		for i, v := range r.Classes[c].X {
			s.Set(i, c, v)
		}
	}
	return s
}

// Probabilities returns the per-node class distribution: Scores with every
// row normalised to sum to one. Rows whose raw scores are all zero stay
// zero.
func (r *Result) Probabilities() *vec.Matrix {
	p := r.Scores()
	for i := 0; i < p.Rows; i++ {
		row := p.Row(i)
		vec.Normalize1(row)
	}
	return p
}

// LiftedProbabilities returns the per-node class distribution computed on
// background-subtracted scores: every stationary vector x̄ carries a
// diffuse per-node floor (restart leakage, uniform dangling-column mass,
// and the node's sheer connectivity) that is nearly identical across
// classes, so the informative part of a row is its excess over the row's
// weakest class. Subtracting the per-row minimum removes that floor while
// keeping the argmax; the gained contrast is what makes multi-label
// thresholding work. Perfectly uniform rows fall back to the raw relative
// scores.
func (r *Result) LiftedProbabilities() *vec.Matrix {
	p := r.Scores()
	for i := 0; i < p.Rows; i++ {
		row := p.Row(i)
		if len(row) == 0 {
			continue
		}
		minV := row[0]
		for _, v := range row[1:] {
			if v < minV {
				minV = v
			}
		}
		lifted := make([]float64, len(row))
		any := false
		for c, v := range row {
			if v > minV {
				lifted[c] = v - minV
				any = true
			}
		}
		if any {
			copy(row, lifted)
		}
		vec.Normalize1(row)
	}
	return p
}

// Predict assigns every node its argmax class.
func (r *Result) Predict() []int {
	pred := make([]int, r.n)
	scores := r.Scores()
	for i := 0; i < r.n; i++ {
		pred[i] = vec.Argmax(scores.Row(i))
	}
	return pred
}

// PredictMultiLabel assigns, per node, every class whose normalised score
// is at least share·(max score of that node); share in (0,1]. Each node
// receives at least its argmax class, so the output is never empty.
func (r *Result) PredictMultiLabel(share float64) [][]int {
	if share <= 0 || share > 1 {
		panic(fmt.Sprintf("tmark: PredictMultiLabel share %v out of (0,1]", share))
	}
	probs := r.Probabilities()
	out := make([][]int, r.n)
	for i := 0; i < r.n; i++ {
		row := probs.Row(i)
		best := vec.Argmax(row)
		if best < 0 {
			continue
		}
		threshold := share * row[best]
		var labels []int
		for c, v := range row {
			if v >= threshold && v > 0 {
				labels = append(labels, c)
			}
		}
		if labels == nil {
			labels = []int{best}
		}
		out[i] = labels
	}
	return out
}

// RelationScore pairs a relation index with its stationary probability.
type RelationScore struct {
	Relation int
	Score    float64
}

// LinkRanking returns the relations ranked by their stationary probability
// z̄ for class c, most relevant first. Ties break toward the lower index so
// the ordering is deterministic.
func (r *Result) LinkRanking(c int) []RelationScore {
	if c < 0 || c >= r.q {
		panic(fmt.Sprintf("tmark: LinkRanking class %d out of range %d", c, r.q))
	}
	z := r.Classes[c].Z
	ranked := make([]RelationScore, len(z))
	for k, v := range z {
		ranked[k] = RelationScore{Relation: k, Score: v}
	}
	sort.SliceStable(ranked, func(a, b int) bool {
		if ranked[a].Score != ranked[b].Score {
			return ranked[a].Score > ranked[b].Score
		}
		return ranked[a].Relation < ranked[b].Relation
	})
	return ranked
}

// NodeRanking returns the nodes ranked by their stationary probability x̄
// for class c, highest first; useful for the director/tag rankings of
// Tables 5, 9 and 10.
func (r *Result) NodeRanking(c int) []RelationScore {
	if c < 0 || c >= r.q {
		panic(fmt.Sprintf("tmark: NodeRanking class %d out of range %d", c, r.q))
	}
	x := r.Classes[c].X
	ranked := make([]RelationScore, len(x))
	for i, v := range x {
		ranked[i] = RelationScore{Relation: i, Score: v}
	}
	sort.SliceStable(ranked, func(a, b int) bool {
		if ranked[a].Score != ranked[b].Score {
			return ranked[a].Score > ranked[b].Score
		}
		return ranked[a].Relation < ranked[b].Relation
	})
	return ranked
}

// Converged reports whether every class iteration reached ε.
func (r *Result) Converged() bool {
	for c := range r.Classes {
		if !r.Classes[c].Converged {
			return false
		}
	}
	return true
}

// MaxIterations returns the largest per-class iteration count, a measure
// of the O(qTD) cost actually incurred.
func (r *Result) MaxIterations() int {
	maxIt := 0
	for c := range r.Classes {
		if r.Classes[c].Iterations > maxIt {
			maxIt = r.Classes[c].Iterations
		}
	}
	return maxIt
}
