package tmark

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"tmark/internal/hin"
)

// benchGraph builds a homophilous network of the given size for solver
// benchmarks.
func benchGraph(n int) *hin.Graph {
	rng := rand.New(rand.NewSource(1))
	g := hin.New("a", "b", "c", "d")
	for i := 0; i < n; i++ {
		f := make([]float64, 16)
		for d := 0; d < 6; d++ {
			f[(i%4)*4+rng.Intn(4)]++
		}
		g.AddNode("", f)
	}
	for k := 0; k < 5; k++ {
		g.AddRelation(fmt.Sprintf("r%d", k), false)
		for e := 0; e < 3*n; e++ {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if rng.Float64() < 0.7 {
				v = (v/4)*4 + u%4 // same class bucket
				if v >= n {
					v -= 4
				}
			}
			if u != v && v >= 0 {
				g.AddEdge(k, u, v)
			}
		}
	}
	for i := 0; i < n; i += 10 {
		g.SetLabels(i, i%4)
	}
	return g
}

// benchGraphQ is benchGraph with a configurable class count q; node i
// belongs to class bucket i%q and features/edges are homophilous within
// the bucket. The tensor nonzero count is ≈ 15·n (5 relations × 3n
// directed edges, minus collisions).
func benchGraphQ(n, q int) *hin.Graph {
	rng := rand.New(rand.NewSource(1))
	names := make([]string, q)
	for c := range names {
		names[c] = fmt.Sprintf("class%d", c)
	}
	g := hin.New(names...)
	for i := 0; i < n; i++ {
		f := make([]float64, 4*q)
		for d := 0; d < 6; d++ {
			f[(i%q)*4+rng.Intn(4)]++
		}
		g.AddNode("", f)
	}
	for k := 0; k < 5; k++ {
		g.AddRelation(fmt.Sprintf("r%d", k), false)
		for e := 0; e < 3*n; e++ {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if rng.Float64() < 0.7 {
				v = (v/q)*q + u%q // same class bucket
				if v >= n {
					v -= q
				}
			}
			if u != v && v >= 0 {
				g.AddEdge(k, u, v)
			}
		}
	}
	for i := 0; i < n; i += 10 {
		g.SetLabels(i, i%q)
	}
	return g
}

// BenchmarkBatchedVsSequential compares the blocked multi-class solver
// against the sequential per-class reference on the O-contraction-
// dominated configuration (Gamma = 0), sweeping the class count and the
// tensor size. Epsilon is unreachable so both paths perform the same
// fixed iteration count, and Workers is pinned to 1 so the ratio isolates
// the kernel fusion rather than pool scheduling. The batched path streams
// each tensor entry once per iteration instead of q times, so its edge
// should grow with q.
func BenchmarkBatchedVsSequential(b *testing.B) {
	for _, nnz := range []int{10_000, 100_000} {
		n := nnz / 15
		for _, q := range []int{2, 4, 8} {
			g := benchGraphQ(n, q)
			cfg := DefaultConfig()
			cfg.Gamma = 0 // O-contraction-dominated: no feature channel
			cfg.ICAUpdate = false
			cfg.Epsilon = 1e-300
			cfg.MaxIterations = 8
			cfg.Workers = 1
			m, err := New(g, cfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, batched := range []bool{true, false} {
				mode := "sequential"
				if batched {
					mode = "batched"
				}
				b.Run(fmt.Sprintf("nnz=%dk/q=%d/%s", nnz/1000, q, mode), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						m.RunContext(context.Background(), WithBatchedClasses(batched))
					}
				})
			}
		}
	}
}

// BenchmarkRun measures a full multi-class solve at several network sizes;
// time should scale with the tensor nonzeros (O(qTD)).
func BenchmarkRun(b *testing.B) {
	for _, n := range []int{200, 500, 1000} {
		g := benchGraph(n)
		m, err := New(g, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Run()
			}
		})
	}
}

// BenchmarkRunWarm measures the incremental-restart saving.
func BenchmarkRunWarm(b *testing.B) {
	g := benchGraph(500)
	m, err := New(g, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	prev := m.Run()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Run()
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.RunWarm(prev)
		}
	})
}

// BenchmarkModelRunParallel sweeps the Workers knob on a large graph so
// the intra-operator scaling can be read off directly. Epsilon is set
// unreachably small so every worker count performs the same fixed number
// of iterations. On a single-CPU host all worker counts share one core
// and the sweep measures only dispatch overhead; run with GOMAXPROCS of
// at least 8 to observe the speedup.
func BenchmarkModelRunParallel(b *testing.B) {
	g := benchGraph(20000)
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := DefaultConfig()
		cfg.Gamma = 0 // the dense feature channel needs O(n^2) memory at this scale
		cfg.Epsilon = 1e-300
		cfg.MaxIterations = 8
		cfg.Workers = workers
		m, err := New(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Run()
			}
		})
	}
}

// BenchmarkModelConstruction isolates tensor + W build cost.
func BenchmarkModelConstruction(b *testing.B) {
	g := benchGraph(500)
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := New(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
