package tmark

import (
	"fmt"
	"math/rand"
	"testing"

	"tmark/internal/hin"
)

// benchGraph builds a homophilous network of the given size for solver
// benchmarks.
func benchGraph(n int) *hin.Graph {
	rng := rand.New(rand.NewSource(1))
	g := hin.New("a", "b", "c", "d")
	for i := 0; i < n; i++ {
		f := make([]float64, 16)
		for d := 0; d < 6; d++ {
			f[(i%4)*4+rng.Intn(4)]++
		}
		g.AddNode("", f)
	}
	for k := 0; k < 5; k++ {
		g.AddRelation(fmt.Sprintf("r%d", k), false)
		for e := 0; e < 3*n; e++ {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if rng.Float64() < 0.7 {
				v = (v/4)*4 + u%4 // same class bucket
				if v >= n {
					v -= 4
				}
			}
			if u != v && v >= 0 {
				g.AddEdge(k, u, v)
			}
		}
	}
	for i := 0; i < n; i += 10 {
		g.SetLabels(i, i%4)
	}
	return g
}

// BenchmarkRun measures a full multi-class solve at several network sizes;
// time should scale with the tensor nonzeros (O(qTD)).
func BenchmarkRun(b *testing.B) {
	for _, n := range []int{200, 500, 1000} {
		g := benchGraph(n)
		m, err := New(g, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Run()
			}
		})
	}
}

// BenchmarkRunWarm measures the incremental-restart saving.
func BenchmarkRunWarm(b *testing.B) {
	g := benchGraph(500)
	m, err := New(g, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	prev := m.Run()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Run()
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.RunWarm(prev)
		}
	})
}

// BenchmarkModelRunParallel sweeps the Workers knob on a large graph so
// the intra-operator scaling can be read off directly. Epsilon is set
// unreachably small so every worker count performs the same fixed number
// of iterations. On a single-CPU host all worker counts share one core
// and the sweep measures only dispatch overhead; run with GOMAXPROCS of
// at least 8 to observe the speedup.
func BenchmarkModelRunParallel(b *testing.B) {
	g := benchGraph(20000)
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := DefaultConfig()
		cfg.Gamma = 0 // the dense feature channel needs O(n^2) memory at this scale
		cfg.Epsilon = 1e-300
		cfg.MaxIterations = 8
		cfg.Workers = workers
		m, err := New(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Run()
			}
		})
	}
}

// BenchmarkModelConstruction isolates tensor + W build cost.
func BenchmarkModelConstruction(b *testing.B) {
	g := benchGraph(500)
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := New(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
