package tmark

// Chaos tests: deterministic fault injection into the solver's kernels
// and checkpoint path, asserting the guards degrade to correct — never
// wrong — answers. A corrupted iterate is always discarded before
// commit, so every state a faulted run reports is a healthy iterate,
// and the automatic demoted retry recovers the full bitwise-correct
// result when the corruption was transient.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"tmark/internal/fault"
	"tmark/internal/vec"
)

// injectNaN arms the fault point to write NaN into the kernel's output
// block on its nth firing, returning the disarm func.
func injectNaN(p fault.Point, nth int64, offset int) func() {
	return fault.Inject(p, fault.Nth(nth, func(args ...any) {
		dst := args[0].([]float64)
		dst[offset] = math.NaN()
	}))
}

// A transient NaN in the blocked node kernel must trigger exactly one
// demoted retry from the last good state and still produce the bitwise
// answer of a clean run.
func TestChaosNaNRecoversThroughRetry(t *testing.T) {
	g := benchGraph(100)
	for _, workers := range []int{1, 4} {
		label := fmt.Sprintf("workers=%d", workers)
		m, err := New(g, ckConfig(true, workers))
		if err != nil {
			t.Fatal(err)
		}
		ref := m.RunContext(context.Background())

		remove := injectNaN(fault.TensorNodeBatch, 5, 0)
		res := m.RunContext(context.Background())
		remove()

		if len(res.Faults) == 0 {
			t.Fatalf("%s: no fault recorded", label)
		}
		if res.Faults[0].Kind != faultNonFinite {
			t.Errorf("%s: fault kind %q", label, res.Faults[0].Kind)
		}
		if res.Reason != ref.Reason {
			t.Errorf("%s: reason %v, want %v (recovered run)", label, res.Reason, ref.Reason)
		}
		assertResultsBitwise(t, label, res, ref)
	}
}

// With the retry disabled the run must stop at the fault with the last
// healthy state: every reported float is finite and each class's
// iteration count is below the fault iteration.
func TestChaosNaNNoRetryStopsHealthy(t *testing.T) {
	m, err := New(benchGraph(100), ckConfig(true, 1))
	if err != nil {
		t.Fatal(err)
	}
	remove := injectNaN(fault.TensorNodeBatch, 5, 0)
	defer remove()
	res := m.RunContext(context.Background(), WithGuards(GuardConfig{NoRetry: true}))

	if res.Reason != ReasonNumericalFault {
		t.Fatalf("reason %v, want ReasonNumericalFault", res.Reason)
	}
	if !errors.Is(res.Stopped, ErrNumericalFault) {
		t.Fatalf("stopped %v, want ErrNumericalFault", res.Stopped)
	}
	if len(res.Faults) != 1 || res.Faults[0].Iter != 5 {
		t.Fatalf("faults %v, want one at iteration 5", res.Faults)
	}
	for c := range res.Classes {
		cr := &res.Classes[c]
		if cr.Iterations != 4 {
			t.Errorf("class %d reports iteration %d, want 4 (last healthy)", c, cr.Iterations)
		}
		for _, v := range cr.X {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("class %d X contains non-finite value", c)
			}
		}
	}
}

// A deterministic fault (reproducing on every firing) must survive the
// one retry and stop the run — the retry is attempted once, not looped.
func TestChaosPersistentFaultStops(t *testing.T) {
	m, err := New(benchGraph(100), ckConfig(true, 1))
	if err != nil {
		t.Fatal(err)
	}
	remove := fault.Inject(fault.TensorNodeBatch, func(args ...any) {
		args[0].([]float64)[0] = math.NaN()
	})
	defer remove()
	res := m.RunContext(context.Background())
	if res.Reason != ReasonNumericalFault {
		t.Fatalf("reason %v, want ReasonNumericalFault", res.Reason)
	}
	// Both attempts' faults are on the record: the original and the one
	// that reproduced on the demoted retry.
	if len(res.Faults) != 2 {
		t.Fatalf("faults %v, want two (original + retry)", res.Faults)
	}
}

// In a batched column solve a NaN confined to one column must retire
// that column alone with its last healthy state; the other columns keep
// iterating and finish bitwise identical to a clean run.
func TestChaosColumnFaultIsolation(t *testing.T) {
	g := benchGraph(100)
	queries := []ColumnQuery{
		{Seeds: []int{0, 4, 8}},
		{Seeds: []int{1, 5, 9}},
		{Seeds: []int{2, 6, 10}},
	}
	m, err := New(g, ckConfig(false, 1))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.SolveColumns(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt column 1 of the relation block on the 4th iteration.
	remove := fault.Inject(fault.TensorRelationBatch, fault.Nth(4, func(args ...any) {
		dst, cols := args[0].([]float64), args[1].(int)
		dst[1%cols] = math.NaN()
	}))
	defer remove()
	out, err := m.SolveColumns(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}

	if !errors.Is(out[1].Stopped, ErrNumericalFault) {
		t.Fatalf("column 1 stopped %v, want ErrNumericalFault", out[1].Stopped)
	}
	if out[1].Iterations != 3 {
		t.Errorf("column 1 reports iteration %d, want 3 (last healthy)", out[1].Iterations)
	}
	for _, v := range out[1].X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("faulted column reports non-finite state")
		}
	}
	for _, i := range []int{0, 2} {
		if out[i].Stopped != nil {
			t.Errorf("healthy column %d stopped: %v", i, out[i].Stopped)
		}
		if d := vec.Diff1(out[i].X, ref[i].X); d != 0 {
			t.Errorf("healthy column %d X diverged by %v", i, d)
		}
		if out[i].Iterations != ref[i].Iterations {
			t.Errorf("healthy column %d iterations %d vs %d", i, out[i].Iterations, ref[i].Iterations)
		}
	}
}

// The stagnation guard stops a run whose residuals go flat, without a
// retry (the verdict is a property of the data, not the hardware).
func TestGuardStagnationStopsRun(t *testing.T) {
	cfg := ckConfig(true, 1)
	cfg.Epsilon = 1e-300 // unreachable: every run grinds to the cap
	m, err := New(benchGraph(100), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// StagnationTol = 1 accepts any window as flat, so the guard fires as
	// soon as the window fills — a deterministic stand-in for a genuinely
	// stuck iteration.
	res := m.RunContext(context.Background(), WithGuards(GuardConfig{Stagnation: 3, StagnationTol: 1}))
	if res.Reason != ReasonStagnated {
		t.Fatalf("reason %v, want ReasonStagnated", res.Reason)
	}
	if !errors.Is(res.Stopped, ErrStagnated) {
		t.Fatalf("stopped %v, want ErrStagnated", res.Stopped)
	}
	if len(res.Faults) != 1 || res.Faults[0].Kind != faultStagnation || res.Faults[0].Iter != 3 {
		t.Fatalf("faults %v, want one stagnation at iteration 3", res.Faults)
	}
}

// A failing checkpoint sink must not stop the solve: the run completes
// identically, losing only resumability.
func TestChaosCheckpointSaveFailureDoesNotStopRun(t *testing.T) {
	m, err := New(benchGraph(100), ckConfig(true, 1))
	if err != nil {
		t.Fatal(err)
	}
	ref := m.RunContext(context.Background())

	remove := fault.InjectErr(fault.CheckpointSave, func() error {
		return errors.New("disk on fire")
	})
	defer remove()
	sink := &MemorySink{}
	res := m.RunContext(context.Background(), WithCheckpoint(sink, 2))
	if sink.Last() != nil {
		t.Error("sink received a snapshot despite the injected save failure")
	}
	assertResultsBitwise(t, "failing-sink", res, ref)
}

// The sequential step() carries the same always-on corruption guard:
// a poisoned iterate makes it return NaN and leave x/z untouched at the
// last healthy iteration (the sequential kernels expose no batch fault
// points, so the guard is driven directly).
func TestSequentialStepDiscardsCorruptIterate(t *testing.T) {
	m, err := New(benchGraph(100), ckConfig(false, 1))
	if err != nil {
		t.Fatal(err)
	}
	rs := m.newRunScratch(runOptions{sequential: true})
	defer rs.close()
	l, seeds := m.seedVector(0)
	s := classState{
		x: vec.Clone(l), z: vec.Uniform(m.graph.M()), l: l,
		xNext: vec.New(m.graph.N()), zNext: vec.New(m.graph.M()), tmp: vec.New(m.graph.N()),
		seeds: seeds,
	}
	if rho := m.step(&s, rs); math.IsNaN(rho) {
		t.Fatal("clean step returned NaN")
	}
	before := vec.Clone(s.x)
	s.x[3] = math.NaN() // poison the committed state; next step must fault
	before[3] = math.NaN()
	if rho := m.step(&s, rs); !math.IsNaN(rho) {
		t.Fatalf("poisoned step returned %v, want NaN", rho)
	}
	for i, v := range s.x {
		if v != before[i] && !(math.IsNaN(v) && math.IsNaN(before[i])) {
			t.Fatalf("faulted step committed x[%d]", i)
		}
	}
}
