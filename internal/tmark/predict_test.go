package tmark

import (
	"math"
	"testing"

	"tmark/internal/vec"
)

func solvedExample(t *testing.T) *Result {
	t.Helper()
	m, err := New(paperGraph(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m.Run()
}

func TestScoresShape(t *testing.T) {
	res := solvedExample(t)
	s := res.Scores()
	if s.Rows != 4 || s.Cols != 2 {
		t.Fatalf("Scores shape %dx%d, want 4x2", s.Rows, s.Cols)
	}
	if res.N() != 4 || res.M() != 3 || res.Q() != 2 {
		t.Errorf("result dims %d/%d/%d, want 4/3/2", res.N(), res.M(), res.Q())
	}
	// Column c must equal the class's X vector.
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			if s.At(i, c) != res.Classes[c].X[i] {
				t.Fatalf("Scores[%d,%d] != X", i, c)
			}
		}
	}
}

func TestProbabilitiesRowsNormalised(t *testing.T) {
	res := solvedExample(t)
	p := res.Probabilities()
	for i := 0; i < p.Rows; i++ {
		if !vec.IsStochastic(p.Row(i), 1e-9) {
			t.Errorf("row %d not a distribution: %v", i, p.Row(i))
		}
	}
}

func TestPredictMultiLabel(t *testing.T) {
	res := solvedExample(t)
	// share=1 keeps only classes tied with the max — at least one each.
	strict := res.PredictMultiLabel(1)
	for i, labels := range strict {
		if len(labels) == 0 {
			t.Errorf("node %d got no labels", i)
		}
	}
	// A tiny share accepts everything with nonzero probability.
	loose := res.PredictMultiLabel(1e-9)
	for i := range loose {
		if len(loose[i]) < len(strict[i]) {
			t.Errorf("node %d: loose share returned fewer labels", i)
		}
	}
}

func TestPredictMultiLabelPanics(t *testing.T) {
	res := solvedExample(t)
	defer func() {
		if recover() == nil {
			t.Errorf("share=0 should panic")
		}
	}()
	res.PredictMultiLabel(0)
}

func TestLinkRankingSortedAndComplete(t *testing.T) {
	res := solvedExample(t)
	for c := 0; c < 2; c++ {
		ranked := res.LinkRanking(c)
		if len(ranked) != 3 {
			t.Fatalf("class %d: ranked %d relations, want 3", c, len(ranked))
		}
		seen := map[int]bool{}
		var total float64
		for q := range ranked {
			if q > 0 && ranked[q].Score > ranked[q-1].Score {
				t.Errorf("class %d: ranking not descending at %d", c, q)
			}
			seen[ranked[q].Relation] = true
			total += ranked[q].Score
		}
		if len(seen) != 3 {
			t.Errorf("class %d: duplicate relations in ranking", c)
		}
		if math.Abs(total-1) > 1e-8 {
			t.Errorf("class %d: ranking scores sum to %v, want 1", c, total)
		}
	}
}

func TestNodeRankingFavoursSeeds(t *testing.T) {
	res := solvedExample(t)
	dm := res.NodeRanking(0)
	// The DM seed p1 (index 0) should rank first: the restart keeps pumping
	// mass into it.
	if dm[0].Relation != 0 {
		t.Errorf("DM top node = %d, want 0 (the seed p1)", dm[0].Relation)
	}
	cv := res.NodeRanking(1)
	if cv[0].Relation != 1 {
		t.Errorf("CV top node = %d, want 1 (the seed p2)", cv[0].Relation)
	}
}

func TestRankingPanics(t *testing.T) {
	res := solvedExample(t)
	for name, f := range map[string]func(){
		"LinkRanking": func() { res.LinkRanking(9) },
		"NodeRanking": func() { res.NodeRanking(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMaxIterations(t *testing.T) {
	res := solvedExample(t)
	maxIt := res.MaxIterations()
	if maxIt <= 0 || maxIt > DefaultConfig().MaxIterations {
		t.Errorf("MaxIterations = %d out of range", maxIt)
	}
	for _, cr := range res.Classes {
		if cr.Iterations > maxIt {
			t.Errorf("class %d iterations %d exceed max %d", cr.Class, cr.Iterations, maxIt)
		}
	}
}
