package tmark

import (
	"math/rand"
	"testing"

	"tmark/internal/vec"
)

// A parallel solve must agree with the fully serial solve: the sharded
// kernels change only the floating-point summation order, so per-node
// scores may drift by rounding but predictions and distributions must
// match tightly.
func TestRunParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 6; trial++ {
		g := randomGraph(rng, 20+rng.Intn(30), 1+rng.Intn(3), 2+rng.Intn(3))
		for _, ica := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.ICAUpdate = ica
			cfg.Gamma = 0.5
			cfg.Workers = 1
			serial, err := New(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := serial.Run()

			cfg.Workers = 4
			parallel, err := New(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := parallel.Run()

			for c := range want.Classes {
				if d := vec.Diff1(want.Classes[c].X, got.Classes[c].X); d > 1e-6 {
					t.Errorf("trial %d ica=%v class %d: X diverged by %v", trial, ica, c, d)
				}
				if d := vec.Diff1(want.Classes[c].Z, got.Classes[c].Z); d > 1e-6 {
					t.Errorf("trial %d ica=%v class %d: Z diverged by %v", trial, ica, c, d)
				}
			}
			wantPred := want.Predict()
			gotPred := got.Predict()
			for i := range wantPred {
				if wantPred[i] != gotPred[i] {
					t.Errorf("trial %d ica=%v: node %d predicted %d serial vs %d parallel",
						trial, ica, i, wantPred[i], gotPred[i])
				}
			}
		}
	}
}

// For a fixed Workers value, repeated parallel runs must agree bit for
// bit: shard boundaries and reduction order depend only on the worker
// count, not on scheduling.
func TestRunParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	g := randomGraph(rng, 40, 2, 3)
	cfg := DefaultConfig()
	cfg.Workers = 4
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := m.Run()
	for trial := 0; trial < 5; trial++ {
		res := m.Run()
		for c := range first.Classes {
			if d := vec.Diff1(first.Classes[c].X, res.Classes[c].X); d != 0 {
				t.Fatalf("trial %d class %d: X not deterministic (diff %v)", trial, c, d)
			}
			if d := vec.Diff1(first.Classes[c].Z, res.Classes[c].Z); d != 0 {
				t.Fatalf("trial %d class %d: Z not deterministic (diff %v)", trial, c, d)
			}
		}
	}
}

// RunWarm must follow the same parallel machinery as Run.
func TestRunWarmParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	g := randomGraph(rng, 30, 2, 2)
	cfg := DefaultConfig()
	cfg.Workers = 1
	ms, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := ms.Run()
	want := ms.RunWarm(prev)

	cfg.Workers = 3
	mp, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := mp.RunWarm(prev)
	for c := range want.Classes {
		if d := vec.Diff1(want.Classes[c].X, got.Classes[c].X); d > 1e-6 {
			t.Errorf("class %d: warm X diverged by %v", c, d)
		}
	}
}

// A Model must stay safe for concurrent Run calls: each run owns its pool
// and scratch. Run under -race this doubles as the race check for the
// whole solver stack.
func TestConcurrentParallelRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := randomGraph(rng, 30, 2, 3)
	cfg := DefaultConfig()
	cfg.Workers = 2
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := m.Run()
	done := make(chan *Result, 4)
	for i := 0; i < 4; i++ {
		go func() { done <- m.Run() }()
	}
	for i := 0; i < 4; i++ {
		res := <-done
		for c := range base.Classes {
			if d := vec.Diff1(base.Classes[c].X, res.Classes[c].X); d != 0 {
				t.Errorf("concurrent run %d class %d drifted by %v", i, c, d)
			}
		}
	}
}
