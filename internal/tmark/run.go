package tmark

// The context-aware run API. RunContext is the solver's real entry point:
// Run, RunWarm and RunClass are thin wrappers over it. The functional
// options select per-run behaviour — telemetry collection (WithStats),
// an iteration callback (WithProgress), a worker-count override
// (WithWorkers) — without widening the method signature, and the context
// makes every run cancellable: the iteration loops check ctx between
// iterations, so a cancelled or expired context stops the solver within
// one iteration and the partial Result (with Stopped/Reason set) remains
// fully usable for prediction.

import (
	"context"
	"errors"

	"tmark/internal/accel"
	"tmark/internal/fault"
	"tmark/internal/obs"
	"tmark/internal/par"
	"tmark/internal/sparse"
	"tmark/internal/tensor"
	"tmark/internal/vec"
)

// Reason labels why a solver run returned.
type Reason int

const (
	// ReasonUnknown is the zero value; results loaded from disk or built
	// before this field existed carry it.
	ReasonUnknown Reason = iota
	// ReasonConverged: every class reached ρ_t < ε.
	ReasonConverged
	// ReasonMaxIterations: the iteration cap fired before convergence.
	ReasonMaxIterations
	// ReasonCanceled: the run's context was cancelled mid-solve.
	ReasonCanceled
	// ReasonDeadline: the run's context deadline expired mid-solve.
	ReasonDeadline
	// ReasonNumericalFault: a numerical-health guard detected a
	// corrupted or diverging iterate and the (possibly retried) run
	// stopped with the last healthy state; see Result.Faults.
	ReasonNumericalFault
	// ReasonStagnated: the residual series went flat before reaching
	// Epsilon (GuardConfig.Stagnation).
	ReasonStagnated
)

// String names the reason for logs and reports.
func (r Reason) String() string {
	switch r {
	case ReasonConverged:
		return "converged"
	case ReasonMaxIterations:
		return "max-iterations"
	case ReasonCanceled:
		return "canceled"
	case ReasonDeadline:
		return "deadline"
	case ReasonNumericalFault:
		return "numerical-fault"
	case ReasonStagnated:
		return "stagnated"
	default:
		return "unknown"
	}
}

// RunStats is the per-run telemetry record filled by WithStats: wall
// time, the per-kernel time/call/item split, per-class iteration counts
// and residual traces, worker-pool activity and the allocation delta.
type RunStats = obs.RunStats

// ClassStats is the per-class slice of a RunStats.
type ClassStats = obs.ClassStats

// KernelStats is the per-kernel slice of a RunStats.
type KernelStats = obs.KernelStats

// Kernel identifies a compute kernel in a RunStats.
type Kernel = obs.Kernel

// runOptions is the resolved option set of one run.
type runOptions struct {
	stats    *RunStats
	progress func(class, iter int, rho float64)
	workers  int // 0 keeps Config.Workers
	// sequential selects the per-class reference solver instead of the
	// default batched (blocked multi-class) path; see WithBatchedClasses.
	sequential bool
	// ckSink/ckEvery enable periodic checkpointing of the batched loops;
	// resume restores a prior snapshot. See WithCheckpoint / ResumeFrom.
	ckSink  CheckpointSink
	ckEvery int
	resume  *Checkpoint
	// noASM demotes the blocked kernels to their scalar reference bodies
	// (WithScalarKernels); the numerical-fault retry sets it too.
	noASM bool
	// guards enables the optional numerical-health probes; see WithGuards.
	guards *GuardConfig
	// accelerate turns on the extrapolated power method in the batched
	// lockstep loops; see WithAcceleration.
	accelerate bool
	// approximate replaces the fixed-point loop with the linearized
	// single-solve tier; see WithApproximate.
	approximate bool
	// dist, when non-nil, offloads the blocked contractions to a
	// distributed applier (the shard coordinator); see
	// WithDistributedApply.
	dist DistApplier
	// eqRestart has RunWarmContext seed each class's restart vector from
	// the previous equilibrium restart, not just x̄/z̄; see
	// WithEquilibriumRestart.
	eqRestart bool
}

// DistApplier computes the blocked kernel passes of the batched
// lockstep loops out of process — the hook the shard coordinator
// (internal/shard) implements. NodeBatch and RelationBatch must fill
// dst with results bitwise identical to the in-process parallel kernels
// at the applier's worker count; FeatureBatch may decline (handled
// false) and let the local feature matvec run. Any error permanently
// degrades the run to the local kernels: the solver nulls the applier,
// recomputes the failed pass locally and carries on, so a worker lost
// mid-iteration costs one retried kernel pass, never the solve.
type DistApplier interface {
	NodeBatch(x, z, dst []float64, b int) error
	RelationBatch(x, dst []float64, b int) error
	FeatureBatch(x, dst []float64, b int) (handled bool, err error)
}

// WithDistributedApply routes the batched lockstep kernel passes
// through d (the shard coordinator). The extrapolator, health guards,
// ICA reseed, normalisation and convergence logic all keep running
// locally on the reduced iterate — only the O/R contractions and the
// W matvec move across processes. The sequential reference paths and
// the approximate tier ignore the option. On any applier error the run
// degrades permanently to the local kernels (counted in
// tmark_dist_degraded_total) — the caller still holds the full model,
// so correctness never depends on the workers.
func WithDistributedApply(d DistApplier) RunOption {
	return func(o *runOptions) { o.dist = d }
}

// RunOption configures one solver run; see WithStats, WithProgress and
// WithWorkers.
type RunOption func(*runOptions)

// WithStats has the run fill s with its telemetry: wall time, the
// per-kernel time split, per-class iteration counts and residual traces,
// pool activity, and the allocation delta. Collection adds two clock
// reads per kernel call on the driver goroutine — negligible against the
// kernels themselves — and does not change any numeric result. s is
// rewritten in place, so one RunStats may be reused across runs.
func WithStats(s *RunStats) RunOption {
	return func(o *runOptions) { o.stats = s }
}

// WithProgress invokes fn after every iteration of every class with the
// class index, that class's iteration count, and the iteration's residual
// ρ. The callback runs on the solver goroutine: keep it cheap, and do not
// call back into the model from it. Cancelling the run's context from the
// callback stops the solver within one iteration.
func WithProgress(fn func(class, iter int, rho float64)) RunOption {
	return func(o *runOptions) { o.progress = fn }
}

// WithWorkers overrides Config.Workers for this run only: n = 1 forces a
// serial solve, n > 1 shards the kernels across n workers. n <= 0 keeps
// the model's configured value.
func WithWorkers(n int) RunOption {
	return func(o *runOptions) {
		if n > 0 {
			o.workers = n
		}
	}
}

// WithBatchedClasses selects between the batched multi-class solver (on,
// the default) and the sequential per-class reference path (off). The
// batched path stores the per-class distributions as one blocked n×q
// matrix and advances every class per kernel pass, so each tensor entry
// and CSR row is streamed once per iteration instead of q times; classes
// that converge retire from the active column set, so late iterations
// only pay for stragglers. Per class the two paths produce bitwise
// identical X, Z, residual traces and iteration counts for a fixed
// worker count. The only observable difference is cancellation order
// with the ICA update disabled: the sequential path finishes class c
// before starting class c+1 (classes after the cancellation point keep
// their seed state), while the batched path advances all classes in
// lockstep (every class holds the same partial iteration count).
func WithBatchedClasses(on bool) RunOption {
	return func(o *runOptions) { o.sequential = !on }
}

// WithCheckpoint has the batched lockstep loops hand a snapshot of
// their full working set to sink every `every` iterations, plus a final
// snapshot when the run is interrupted by its context — so a killed or
// drained process can later continue from the last checkpoint with
// ResumeFrom. Snapshots are deep copies; Save runs on the solver
// goroutine. Checkpointing applies to the batched paths (the default);
// the sequential reference paths ignore it. Save errors never stop the
// solve — they are counted in the metrics registry and the run carries
// on, since a failing checkpoint disk must not take down a healthy
// computation.
func WithCheckpoint(sink CheckpointSink, every int) RunOption {
	return func(o *runOptions) {
		if sink != nil && every > 0 {
			o.ckSink = sink
			o.ckEvery = every
		}
	}
}

// ResumeFrom restores a checkpoint written by a previous run with the
// same model (dimensions and arithmetic config must match; RunContext
// panics on a mismatched checkpoint — use Model.ValidateCheckpoint to
// probe first, and SolveColumns returns the mismatch as an error). The
// resumed run continues at the snapshot's iteration and, for a fixed
// worker count, is bitwise identical to the uninterrupted run. Resume
// requires the batched path and overrides any warm start.
func ResumeFrom(cp *Checkpoint) RunOption {
	return func(o *runOptions) { o.resume = cp }
}

// WithAcceleration(true) turns on the extrapolated power method in the
// batched lockstep loops (class runs and SolveColumns): every three
// committed iterates the solver proposes a SQUAREM-extrapolated
// candidate for each active column, projects it back onto the simplex,
// and vets it through one ordinary iteration pass under the same health
// probes a plain run applies — finite values, conserved column mass,
// and a residual strictly below the last committed one. A candidate
// that fails any probe is discarded and plain iteration resumes from
// the last committed iterate, so the converged answer satisfies exactly
// the guarantees of the unaccelerated solve (it converges in at most as
// many committed iterations, typically far fewer on slow-mixing
// configurations). A column whose proposals keep failing stops
// proposing, bounding the vet overhead. The sequential reference paths
// ignore this option. Checkpoints snapshot only committed state, so
// WithCheckpoint composes: a resumed run simply restarts extrapolation
// from plain-iteration state.
func WithAcceleration(on bool) RunOption {
	return func(o *runOptions) { o.accelerate = on }
}

// WithEquilibriumRestart(true) has RunWarmContext seed each class's
// restart vector from the previous result's equilibrium restart (its
// labels plus accepted pseudo-seeds) instead of replaying the ICA
// schedule from the bare seed vector. This is what makes a warm restart
// actually cheap — the iterations before the reseed window opens no
// longer drag x̄ off its stationary point — but it is only sound when
// the previous equilibrium is still meaningful: the caller must
// guarantee the labels did not change between the runs (edge-only
// mutations, the streaming-ingest setting). After a label change the
// pseudo-seed set must be re-earned from scratch; leave this off and
// pay the schedule replay. Ignored by cold runs and without ICAUpdate.
func WithEquilibriumRestart(on bool) RunOption {
	return func(o *runOptions) { o.eqRestart = on }
}

// WithApproximate(true) selects the linearized fast tier: instead of
// iterating the coupled (x, z) fixed point, the solver freezes z at the
// uniform distribution, collapses the tensor into one sparse matrix,
// and solves the resulting linear system in a fixed number of Jacobi
// sweeps (contraction rate ≤ 1−α). The answer is approximate — the ICA
// reseed is dropped and z never re-couples — but needs no tensor
// streaming; see internal/accel.System for the accuracy bound and the
// golden suite for the measured envelope. Overrides WithAcceleration.
// Incompatible with ResumeFrom (there is no iteration state to resume);
// WithCheckpoint is ignored.
func WithApproximate(on bool) RunOption {
	return func(o *runOptions) { o.approximate = on }
}

// WithScalarKernels(true) demotes the blocked contractions to their
// scalar reference bodies even on hosts with the AVX2 kernels. The
// numerical-fault retry uses it to re-run a faulted solve on the
// reference path; tests use it to cover both kernel implementations on
// any machine. The scalar and vectorised bodies are bitwise identical
// by contract, so this changes no result — it only removes the
// hand-written assembly from the loop.
func WithScalarKernels(on bool) RunOption {
	return func(o *runOptions) { o.noASM = on }
}

// Run solves the tensor equations for every class; it is RunContext with
// a background context and no options. All classes advance in lockstep
// through the batched kernels: the per-class distributions live in one
// blocked n×q matrix, so every tensor entry and CSR row is streamed once
// per iteration and applied to all active classes (see
// WithBatchedClasses). The kernels are additionally sharded across a
// worker pool of cfg.Workers goroutines, so the solver scales with cores
// even when the class count is small (q = 4–5 on the paper's datasets).
// With the ICA update the lockstep order is also semantically required,
// because eq. (12) accepts "highly confident labels ... in the
// prediction matrix": a confident label is a cross-class statement, so
// after every iteration each unlabelled node may join the restart set of
// its argmax class only.
func (m *Model) Run() *Result {
	return m.RunContext(context.Background())
}

// RunContext is Run with cancellation and per-run options. The iteration
// loops check ctx between iterations: when it is cancelled or its
// deadline expires, the solver returns within one iteration with the
// partial solution, Result.Stopped set to the context's error, and
// Result.Reason set to ReasonCanceled or ReasonDeadline. Classes the run
// never reached hold their seed state, so Predict and the other Result
// accessors stay usable on a partial result. A nil ctx is treated as
// context.Background().
func (m *Model) RunContext(ctx context.Context, opts ...RunOption) *Result {
	return m.runClasses(orBackground(ctx), nil, resolveOptions(opts))
}

// warmFn supplies per-class warm starting vectors; nil starts cold. The
// restart vector l is optional: nil keeps the class's own seed vector,
// non-nil carries a previous run's equilibrium restart (labels plus
// accepted pseudo-seeds) so the iterations before the ICA reseed window
// opens (t > 2) do not drag a warm x̄ away from its stationary point.
type warmFn func(c int) (x, z, l vec.Vector, ok bool)

// runClasses runs the class solve once and, when a batched attempt hits
// a retryable corruption fault, retries exactly once from the fault's
// last-good snapshot with the AVX2 kernels demoted to the scalar
// reference bodies — the recovery path for a misbehaving vector unit.
// A fault that reproduces on the demoted attempt (it is deterministic)
// stops the run with the last healthy state and ReasonNumericalFault.
func (m *Model) runClasses(ctx context.Context, warm warmFn, ro runOptions) *Result {
	res, flt := m.runClassesOnce(ctx, warm, ro)
	if flt == nil || !flt.retryable || flt.cp == nil {
		return res
	}
	if ro.noASM || (ro.guards != nil && ro.guards.NoRetry) || ctx.Err() != nil {
		return res
	}
	regGuardRetries.Inc()
	ro.resume = flt.cp
	ro.noASM = true
	res2, _ := m.runClassesOnce(ctx, warm, ro)
	// The first attempt's fault stays on the record of the run that
	// recovered from it.
	res2.Faults = append([]Fault{flt.fault}, res2.Faults...)
	return res2
}

// runClassesOnce is one full solve attempt: scratch build, path
// dispatch, fault bookkeeping, finishRun. The returned runFault is
// non-nil only for batched-path guard verdicts (the input to the retry
// decision); sequential-path faults are recorded on the Result alone.
func (m *Model) runClassesOnce(ctx context.Context, warm warmFn, ro runOptions) (*Result, *runFault) {
	if ro.resume != nil && ro.sequential {
		panic("tmark: ResumeFrom requires the batched path (WithBatchedClasses(true))")
	}
	if ro.resume != nil && ro.approximate {
		panic("tmark: ResumeFrom requires the iterative path, not WithApproximate")
	}
	rs := m.newRunScratch(ro)
	defer rs.close()
	q := m.graph.Q()
	res := &Result{
		Classes: make([]ClassResult, q),
		n:       m.graph.N(),
		m:       m.graph.M(),
		q:       q,
	}
	var flt *runFault
	if ro.approximate {
		if err := m.runApproximate(ctx, res, rs); err != nil {
			res.Reason, res.Stopped = ReasonNumericalFault, err
		}
	} else if !ro.sequential {
		flt = m.runBatched(ctx, res, warm, rs)
	} else if m.cfg.ICAUpdate {
		m.runLockstepFrom(ctx, res, warm, rs)
	} else {
		for c := 0; c < q; c++ {
			if warm != nil {
				if x, z, wl, ok := warm(c); ok {
					res.Classes[c] = m.solveClassFrom(ctx, c, x, z, wl, rs)
					continue
				}
			}
			res.Classes[c] = m.solveClass(ctx, c, rs)
		}
	}
	if flt != nil {
		res.Faults = append(res.Faults, flt.fault)
		res.Reason, res.Stopped = flt.reason()
	} else if len(rs.faults) > 0 {
		res.Faults = append(res.Faults, rs.faults...)
		res.Reason, res.Stopped = ReasonNumericalFault, ErrNumericalFault
	}
	m.finishRun(ctx, res, rs)
	return res, flt
}

func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

func resolveOptions(opts []RunOption) runOptions {
	var ro runOptions
	for _, opt := range opts {
		if opt != nil {
			opt(&ro)
		}
	}
	return ro
}

// finishRun stamps the stop reason, fills the caller's RunStats, and
// publishes the run's aggregates to the process-wide metrics registry.
// A reason already stamped by a guard (numerical fault, stagnation) is
// kept — the guard verdict is more specific than anything derivable
// here.
func (m *Model) finishRun(ctx context.Context, res *Result, rs *runScratch) {
	if res.Reason == ReasonUnknown {
		if err := ctx.Err(); err != nil {
			res.Stopped = err
			if errors.Is(err, context.DeadlineExceeded) {
				res.Reason = ReasonDeadline
			} else {
				res.Reason = ReasonCanceled
			}
		} else if res.Converged() {
			res.Reason = ReasonConverged
		} else {
			res.Reason = ReasonMaxIterations
		}
	}

	st := rs.opts.stats
	rs.col.Finish(st)
	if st != nil {
		st.Workers = rs.workers
		st.AccelProposed = rs.accel.Proposed
		st.AccelAccepted = rs.accel.Accepted
		st.AccelRejected = rs.accel.Rejected
		st.Iterations = 0
		st.Classes = st.Classes[:0]
		for i := range res.Classes {
			cr := &res.Classes[i]
			st.Iterations += cr.Iterations
			final := 0.0
			if len(cr.Trace) > 0 {
				final = cr.Trace[len(cr.Trace)-1]
			}
			st.Classes = append(st.Classes, ClassStats{
				Class:         cr.Class,
				Iterations:    cr.Iterations,
				Converged:     cr.Converged,
				FinalResidual: final,
				Residuals:     append([]float64(nil), cr.Trace...),
			})
		}
	}
	if rs.accel.Proposed > 0 {
		regAccelProposed.Add(rs.accel.Proposed)
		regAccelAccepted.Add(rs.accel.Accepted)
		regAccelRejected.Add(rs.accel.Rejected)
	}
	publishRun(res, st)
}

// The solver's standing metrics in the process-wide registry. Cheap
// aggregates (run and iteration counters) are published after every run;
// the per-kernel timers gain data only from runs that collected stats.
var (
	regRuns       = obs.Default().Counter("tmark_runs_total")
	regStopped    = obs.Default().Counter("tmark_runs_stopped_total")
	regIterations = obs.Default().Counter("tmark_iterations_total")
	// Fault-tolerance aggregates: guard trips, demoted retries, and
	// checkpoint traffic.
	regNumericalFaults  = obs.Default().Counter("tmark_numerical_faults_total")
	regStagnations      = obs.Default().Counter("tmark_stagnations_total")
	regGuardRetries     = obs.Default().Counter("tmark_guard_retries_total")
	regCheckpoints      = obs.Default().Counter("tmark_checkpoints_saved_total")
	regCheckpointErrors = obs.Default().Counter("tmark_checkpoint_errors_total")
	// Extrapolated-power-method activity: candidates built, vetted in,
	// and discarded (see WithAcceleration).
	regAccelProposed = obs.Default().Counter("tmark_accel_proposed_total")
	regAccelAccepted = obs.Default().Counter("tmark_accel_accepted_total")
	regAccelRejected = obs.Default().Counter("tmark_accel_rejected_total")
	// Distributed-apply degradations: runs that lost their shard
	// coordinator mid-solve and fell back to the local kernels.
	regDistDegraded = obs.Default().Counter("tmark_dist_degraded_total")
	regKernels       = func() [obs.NumKernels]*obs.Timer {
		var ts [obs.NumKernels]*obs.Timer
		for _, k := range obs.Kernels() {
			ts[k] = obs.Default().Timer("tmark_kernel_" + k.String())
		}
		return ts
	}()
)

// saveCheckpoint hands one snapshot to the sink, counting the outcome.
// Save errors never stop the solve: a failing checkpoint disk must not
// take down a healthy computation, so the error is recorded in the
// registry and the run carries on (losing only resumability since the
// last successful save). The fault point lets the chaos suite fail
// saves deterministically.
func (m *Model) saveCheckpoint(sink CheckpointSink, cp *Checkpoint) {
	var err error
	if fault.Enabled() {
		err = fault.Check(fault.CheckpointSave)
	}
	if err == nil {
		err = sink.Save(cp)
	}
	if err != nil {
		regCheckpointErrors.Inc()
		return
	}
	regCheckpoints.Inc()
}

func publishRun(res *Result, st *RunStats) {
	regRuns.Inc()
	if res.Stopped != nil {
		regStopped.Inc()
	}
	iters := 0
	for i := range res.Classes {
		iters += res.Classes[i].Iterations
	}
	regIterations.Add(int64(iters))
	if st != nil {
		for _, ks := range st.Kernels {
			if ks.Calls > 0 {
				regKernels[ks.Kernel].Observe(ks.Time)
			}
		}
	}
}

// runScratch bundles one run's worker pool, per-kernel scratch buffers,
// telemetry collector and options. The buffers are reused across
// iterations and classes, so steady-state iterations allocate nothing in
// the kernels. A runScratch is owned by one goroutine; concurrent Run
// calls each build their own, which keeps the Model itself read-only
// during solving. A nil pool selects the serial kernel paths; a nil
// collector (the default) reduces every telemetry touch to a branch.
type runScratch struct {
	pool *par.Pool
	o    *tensor.NodeApplyScratch
	r    *tensor.RelationApplyScratch
	wCSR *sparse.MulScratch
	wDen *vec.MulScratch

	// Batched-path scratch: blocked contraction buffers and multi-RHS
	// matvec dispatch state, built only when the run is batched.
	ob    *tensor.NodeBatchScratch
	rb    *tensor.RelationBatchScratch
	wCSRb *sparse.MulBatchScratch
	wDenb *vec.MulBatchScratch

	// wS/wD are the feature matrix's resolved dynamic type, fixed once per
	// run so the per-step wrappers dispatch on a nil check instead of
	// re-running a type switch every iteration. At most one is non-nil.
	wS *sparse.Matrix
	wD *vec.Matrix

	col     *obs.Collector
	opts    runOptions
	workers int

	// faults collects the numerical-health events of the sequential
	// paths (the batched loops report theirs through runFault instead).
	faults []Fault

	// accel aggregates the run's extrapolation activity (WithAcceleration);
	// filled by the lockstep loops, published by finishRun.
	accel accel.Counters
}

// newRunScratch builds the pool, kernel scratch and collector for one
// solver run. The result is never nil — a serial run simply leaves the
// pool unset, and only the scratch of the selected path (batched or
// sequential) is allocated.
func (m *Model) newRunScratch(ro runOptions) *runScratch {
	return m.newRunScratchCols(ro, m.graph.Q())
}

// newRunScratchCols is newRunScratch with an explicit column capacity for
// the blocked buffers: a class run blocks over the graph's q classes,
// while a column-query run (SolveColumns) blocks over the query count.
func (m *Model) newRunScratchCols(ro runOptions, maxCols int) *runScratch {
	w := m.cfg.workerCount()
	if ro.workers > 0 {
		w = ro.workers
	}
	rs := &runScratch{opts: ro, workers: w}
	if ro.stats != nil {
		rs.col = obs.NewCollector()
	}
	switch fw := m.w.(type) {
	case *sparse.Matrix:
		rs.wS = fw
	case *vec.Matrix:
		rs.wD = fw
	}
	if w > 1 {
		rs.pool = par.NewObserved(w, rs.col.AttachPool(w))
	}
	if !ro.sequential {
		// The serial blocked kernels need the per-column sum buffers too,
		// so the batch scratch exists for every worker count.
		q := maxCols
		rs.ob = tensor.NewNodeBatchScratch(m.o, w, q)
		rs.ob.Probe = rs.col.KernelProbe(obs.KernelO)
		rs.ob.NoASM = ro.noASM
		rs.rb = tensor.NewRelationBatchScratch(m.r, w, q)
		rs.rb.Probe = rs.col.KernelProbe(obs.KernelR)
		rs.rb.NoASM = ro.noASM
		if w > 1 {
			switch {
			case rs.wS != nil:
				rs.wCSRb = sparse.NewMulBatchScratch(w)
				rs.wCSRb.Probe = rs.col.KernelProbe(obs.KernelW)
			case rs.wD != nil:
				rs.wDenb = vec.NewMulBatchScratch(w)
				rs.wDenb.Probe = rs.col.KernelProbe(obs.KernelW)
			}
		}
		return rs
	}
	if w > 1 {
		rs.o = tensor.NewNodeApplyScratch(m.o, w)
		rs.o.Probe = rs.col.KernelProbe(obs.KernelO)
		rs.r = tensor.NewRelationApplyScratch(m.r, w)
		rs.r.Probe = rs.col.KernelProbe(obs.KernelR)
		switch {
		case rs.wS != nil:
			rs.wCSR = sparse.NewMulScratch(w)
			rs.wCSR.Probe = rs.col.KernelProbe(obs.KernelW)
		case rs.wD != nil:
			rs.wDen = vec.NewMulScratch(w)
			rs.wDen.Probe = rs.col.KernelProbe(obs.KernelW)
		}
	}
	return rs
}

func (rs *runScratch) close() {
	if rs != nil {
		rs.pool.Close()
	}
}

// progressFn returns the per-iteration callback, or nil.
func (rs *runScratch) progressFn() func(class, iter int, rho float64) {
	if rs == nil {
		return nil
	}
	return rs.opts.progress
}

func (rs *runScratch) applyNode(o *tensor.NodeTransition, x, z, dst vec.Vector) {
	if rs == nil {
		o.Apply(x, z, dst)
		return
	}
	start := rs.col.Clock()
	if rs.pool == nil {
		o.Apply(x, z, dst)
		rs.col.AddKernelItems(obs.KernelO, int64(o.NNZ()))
	} else {
		o.ApplyParallel(rs.pool, rs.o, x, z, dst)
	}
	rs.col.StopKernel(obs.KernelO, start)
}

func (rs *runScratch) applyRelation(r *tensor.RelationTransition, x, dst vec.Vector) {
	if rs == nil {
		r.Apply(x, dst)
		return
	}
	start := rs.col.Clock()
	if rs.pool == nil {
		r.Apply(x, dst)
		rs.col.AddKernelItems(obs.KernelR, int64(r.NNZ()))
	} else {
		r.ApplyParallel(rs.pool, rs.r, x, dst)
	}
	rs.col.StopKernel(obs.KernelR, start)
}

func (rs *runScratch) mulFeature(w matvec, x, dst vec.Vector) {
	if rs == nil {
		w.MulVec(x, dst)
		return
	}
	start := rs.col.Clock()
	switch {
	case rs.wS != nil:
		if rs.pool == nil {
			rs.wS.MulVec(x, dst)
			rs.col.AddKernelItems(obs.KernelW, int64(rs.wS.NNZ()))
		} else {
			rs.wS.MulVecParallel(rs.pool, rs.wCSR, x, dst)
		}
	case rs.wD != nil:
		if rs.pool == nil {
			rs.wD.MulVec(x, dst)
			rs.col.AddKernelItems(obs.KernelW, int64(rs.wD.Rows*rs.wD.Cols))
		} else {
			rs.wD.MulVecParallel(rs.pool, rs.wDen, x, dst)
		}
	default:
		w.MulVec(x, dst)
	}
	rs.col.StopKernel(obs.KernelW, start)
}

// reseed times one ICA reseed pass (fn) under the reseed kernel.
func (rs *runScratch) reseed(items int, fn func()) {
	if rs == nil || rs.col == nil {
		fn()
		return
	}
	start := rs.col.Clock()
	fn()
	rs.col.StopKernel(obs.KernelReseed, start)
	rs.col.AddKernelItems(obs.KernelReseed, int64(items))
}

// The blocked wrappers of the batched path. The batch scratch always
// exists on a batched run (newRunScratch builds it for every worker
// count), so unlike the sequential wrappers there is no nil-rs form.

// distDegrade permanently downgrades the run to the local kernels after
// a distributed-apply failure. The local kernels fully overwrite their
// destination slabs, so the failed remote pass is simply recomputed.
func (rs *runScratch) distDegrade(err error) {
	rs.opts.dist = nil
	regDistDegraded.Inc()
	_ = err
}

func (rs *runScratch) applyNodeBatch(o *tensor.NodeTransition, x, z, dst []float64, b int) {
	if d := rs.opts.dist; d != nil {
		start := rs.col.Clock()
		err := d.NodeBatch(x, z, dst, b)
		if err == nil {
			rs.col.AddKernelCols(obs.KernelO, int64(o.NNZ()), int64(b))
			rs.col.StopKernel(obs.KernelO, start)
			return
		}
		rs.distDegrade(err)
	}
	start := rs.col.Clock()
	if rs.pool == nil {
		o.ApplyBatch(rs.ob, x, z, dst, b)
		rs.col.AddKernelCols(obs.KernelO, int64(o.NNZ()), int64(b))
	} else {
		o.ApplyBatchParallel(rs.pool, rs.ob, x, z, dst, b)
	}
	rs.col.StopKernel(obs.KernelO, start)
}

func (rs *runScratch) applyRelationBatch(r *tensor.RelationTransition, x, dst []float64, b int) {
	if d := rs.opts.dist; d != nil {
		start := rs.col.Clock()
		err := d.RelationBatch(x, dst, b)
		if err == nil {
			rs.col.AddKernelCols(obs.KernelR, int64(r.NNZ()), int64(b))
			rs.col.StopKernel(obs.KernelR, start)
			return
		}
		rs.distDegrade(err)
	}
	start := rs.col.Clock()
	if rs.pool == nil {
		r.ApplyBatch(rs.rb, x, dst, b)
		rs.col.AddKernelCols(obs.KernelR, int64(r.NNZ()), int64(b))
	} else {
		r.ApplyBatchParallel(rs.pool, rs.rb, x, dst, b)
	}
	rs.col.StopKernel(obs.KernelR, start)
}

func (rs *runScratch) mulFeatureBatch(x, dst []float64, b int) {
	if d := rs.opts.dist; d != nil {
		start := rs.col.Clock()
		handled, err := d.FeatureBatch(x, dst, b)
		if err != nil {
			rs.distDegrade(err)
		} else if handled {
			rs.col.AddKernelCols(obs.KernelW, int64(b), int64(b))
			rs.col.StopKernel(obs.KernelW, start)
			return
		}
	}
	start := rs.col.Clock()
	switch {
	case rs.wS != nil:
		if rs.pool == nil {
			rs.wS.MulVecBatch(x, dst, b)
			rs.col.AddKernelCols(obs.KernelW, int64(rs.wS.NNZ()), int64(b))
		} else {
			rs.wS.MulVecBatchParallel(rs.pool, rs.wCSRb, x, dst, b)
		}
	case rs.wD != nil:
		if rs.pool == nil {
			rs.wD.MulVecBatch(x, dst, b)
			rs.col.AddKernelCols(obs.KernelW, int64(rs.wD.Rows*rs.wD.Cols), int64(b))
		} else {
			rs.wD.MulVecBatchParallel(rs.pool, rs.wDenb, x, dst, b)
		}
	default:
		// New only ever builds a CSR or dense W; failing loudly beats
		// silently leaving dst stale.
		panic("tmark: batched run requires a CSR or dense feature matrix")
	}
	rs.col.StopKernel(obs.KernelW, start)
}

// reseedCols times one batched ICA reseed pass (fn) under the reseed
// kernel, crediting the streamed items and the class columns they cover.
func (rs *runScratch) reseedCols(items, cols int, fn func()) {
	if rs.col == nil {
		fn()
		return
	}
	start := rs.col.Clock()
	fn()
	rs.col.StopKernel(obs.KernelReseed, start)
	rs.col.AddKernelCols(obs.KernelReseed, int64(items), int64(cols))
}
