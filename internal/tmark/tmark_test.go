package tmark

import (
	"math"
	"math/rand"
	"testing"

	"tmark/internal/hin"
	"tmark/internal/vec"
)

// paperGraph builds the Section 3.2/4.3 worked example: four publications,
// relations co-author / citation / same-conference, classes DM and CV,
// p1 labelled DM, p2 labelled CV. Features follow the worked cosine matrix
// C (p1~p4, p2~p3).
func paperGraph() *hin.Graph {
	g := hin.New("DM", "CV")
	p1 := g.AddNode("p1", []float64{1, 0})
	p2 := g.AddNode("p2", []float64{0, 1})
	p3 := g.AddNode("p3", []float64{0, 1})
	p4 := g.AddNode("p4", []float64{1, 0})
	co := g.AddRelation("co-author", false)
	cite := g.AddRelation("citation", true)
	conf := g.AddRelation("same-conference", false)
	g.AddEdge(co, p1, p2)
	g.AddEdge(cite, p3, p2)
	g.AddEdge(cite, p3, p4)
	g.AddEdge(cite, p4, p1)
	g.AddEdge(conf, p2, p3)
	g.SetLabels(p1, 0)
	g.SetLabels(p2, 1)
	return g
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"alpha zero", func(c *Config) { c.Alpha = 0 }},
		{"alpha one", func(c *Config) { c.Alpha = 1 }},
		{"gamma negative", func(c *Config) { c.Gamma = -0.1 }},
		{"gamma above one", func(c *Config) { c.Gamma = 1.1 }},
		{"lambda zero", func(c *Config) { c.Lambda = 0 }},
		{"epsilon zero", func(c *Config) { c.Epsilon = 0 }},
		{"no iterations", func(c *Config) { c.MaxIterations = 0 }},
	}
	for _, c := range cases {
		cfg := DefaultConfig()
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestBeta(t *testing.T) {
	cfg := Config{Alpha: 0.8, Gamma: 0.5}
	if got := cfg.Beta(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Beta = %v, want 0.1", got)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(hin.New(), DefaultConfig()); err == nil {
		t.Errorf("empty graph should be rejected")
	}
	g := hin.New("c")
	g.AddNode("a", nil)
	if _, err := New(g, DefaultConfig()); err == nil {
		t.Errorf("graph without labels should be rejected")
	}
	bad := DefaultConfig()
	bad.Alpha = 2
	if _, err := New(paperGraph(), bad); err == nil {
		t.Errorf("bad config should be rejected")
	}
	noClass := &hin.Graph{Nodes: []hin.Node{{Labels: nil}}}
	if _, err := New(noClass, DefaultConfig()); err == nil {
		t.Errorf("graph without classes should be rejected")
	}
}

// The worked example of Section 4.3: p3 must score higher for CV, p4 for
// DM, and every stationary vector must be a probability distribution.
func TestWorkedExampleClassification(t *testing.T) {
	g := paperGraph()
	cfg := DefaultConfig()
	cfg.Alpha = 0.8
	cfg.Gamma = 0.5
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Irreducible() {
		t.Errorf("worked example should be irreducible")
	}
	res := m.Run()
	if !res.Converged() {
		t.Fatalf("worked example should converge")
	}
	dm, cv := res.Classes[0], res.Classes[1]
	for _, cr := range []ClassResult{dm, cv} {
		if !vec.IsStochastic(cr.X, 1e-8) {
			t.Errorf("class %d X not stochastic: sum=%v", cr.Class, vec.Sum(cr.X))
		}
		if !vec.IsStochastic(cr.Z, 1e-8) {
			t.Errorf("class %d Z not stochastic: sum=%v", cr.Class, vec.Sum(cr.Z))
		}
	}
	// Ground truth of the example: p3 is CV, p4 is DM.
	if cv.X[2] <= dm.X[2] {
		t.Errorf("p3 should lean CV: dm=%v cv=%v", dm.X[2], cv.X[2])
	}
	if dm.X[3] <= cv.X[3] {
		t.Errorf("p4 should lean DM: dm=%v cv=%v", dm.X[3], cv.X[3])
	}
	pred := res.Predict()
	if pred[0] != 0 || pred[1] != 1 || pred[2] != 1 || pred[3] != 0 {
		t.Errorf("Predict = %v, want [0 1 1 0]", pred)
	}
}

func TestSeedVector(t *testing.T) {
	g := paperGraph()
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, seeds := m.seedVector(0)
	if seeds != 1 {
		t.Fatalf("DM seeds = %d, want 1", seeds)
	}
	if l[0] != 1 || vec.Sum(l) != 1 {
		t.Errorf("seed vector = %v, want basis at p1", l)
	}
	// A class without labelled nodes gets the uniform fallback.
	g2 := paperGraph()
	g2.AddClass("empty")
	m2, err := New(g2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l2, seeds2 := m2.seedVector(2)
	if seeds2 != 0 {
		t.Errorf("empty class seeds = %d, want 0", seeds2)
	}
	for _, v := range l2 {
		if math.Abs(v-0.25) > 1e-12 {
			t.Errorf("empty class seed vector should be uniform, got %v", l2)
		}
	}
}

// Theorem 1: every iterate stays in the simplex, so traces never produce a
// non-stochastic X/Z; we check across random graphs and configs.
func TestIteratesStayInSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 3+rng.Intn(15), 1+rng.Intn(4), 2+rng.Intn(3))
		cfg := DefaultConfig()
		cfg.Alpha = 0.05 + 0.9*rng.Float64()
		cfg.Gamma = rng.Float64()
		cfg.MaxIterations = 5 + rng.Intn(40)
		m, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		for _, cr := range res.Classes {
			if !vec.IsStochastic(cr.X, 1e-7) {
				t.Fatalf("trial %d class %d: X left simplex (sum %v)", trial, cr.Class, vec.Sum(cr.X))
			}
			if !vec.IsStochastic(cr.Z, 1e-7) {
				t.Fatalf("trial %d class %d: Z left simplex (sum %v)", trial, cr.Class, vec.Sum(cr.Z))
			}
		}
	}
}

// Theorem 2: on an irreducible network the stationary distributions are
// strictly positive.
func TestStationaryPositivity(t *testing.T) {
	g := paperGraph()
	cfg := DefaultConfig()
	cfg.ICAUpdate = false // pure tensor chain, matching the theorem setting
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	for _, cr := range res.Classes {
		for i, v := range cr.X {
			if v <= 0 {
				t.Errorf("class %d: x[%d] = %v, want > 0 (Theorem 2)", cr.Class, i, v)
			}
		}
		for k, v := range cr.Z {
			if v <= 0 {
				t.Errorf("class %d: z[%d] = %v, want > 0 (Theorem 2)", cr.Class, k, v)
			}
		}
	}
}

// Theorem 3 (uniqueness): RunClass is deterministic and Run (parallel)
// agrees with sequential per-class solves.
func TestRunMatchesRunClass(t *testing.T) {
	g := paperGraph()
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	for c := 0; c < g.Q(); c++ {
		single := m.RunClass(c)
		if vec.Diff1(single.X, res.Classes[c].X) > 1e-12 {
			t.Errorf("class %d: parallel and sequential X differ", c)
		}
		if vec.Diff1(single.Z, res.Classes[c].Z) > 1e-12 {
			t.Errorf("class %d: parallel and sequential Z differ", c)
		}
	}
}

func TestConvergenceTraceShrinks(t *testing.T) {
	g := paperGraph()
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cr := m.RunClass(0)
	if !cr.Converged {
		t.Fatalf("worked example class should converge, trace=%v", cr.Trace)
	}
	if len(cr.Trace) != cr.Iterations {
		t.Errorf("trace length %d != iterations %d", len(cr.Trace), cr.Iterations)
	}
	last := cr.Trace[len(cr.Trace)-1]
	if last >= cr.Trace[0] && len(cr.Trace) > 1 {
		t.Errorf("residual did not shrink: first %v last %v", cr.Trace[0], last)
	}
	if last >= DefaultConfig().Epsilon {
		t.Errorf("converged trace must end below epsilon, got %v", last)
	}
}

// Gamma=1 must reduce to the feature channel plus restart: the relational
// tensor contributes nothing.
func TestGammaOneIgnoresRelations(t *testing.T) {
	g := paperGraph()
	cfg := DefaultConfig()
	cfg.Gamma = 1
	cfg.ICAUpdate = false
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	// With features [1,0] for p1,p4 and [0,1] for p2,p3, the DM walk from
	// p1 should give p4 strictly more mass than p2 or p3.
	dm := res.Classes[0]
	if dm.X[3] <= dm.X[1] || dm.X[3] <= dm.X[2] {
		t.Errorf("feature-only DM walk should favour p4: %v", dm.X)
	}
}

// Gamma=0 must ignore the features entirely: scrambling features cannot
// change the result.
func TestGammaZeroIgnoresFeatures(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Gamma = 0
	g1 := paperGraph()
	m1, err := New(g1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2 := paperGraph()
	for i := range g2.Nodes {
		g2.Nodes[i].Features = []float64{float64(i), 1}
	}
	m2, err := New(g2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := m1.Run(), m2.Run()
	for c := range r1.Classes {
		if vec.Diff1(r1.Classes[c].X, r2.Classes[c].X) > 1e-12 {
			t.Errorf("gamma=0 must be feature-independent (class %d)", c)
		}
	}
}

// The ICA update should only ever help confident nodes join the seed set;
// with Lambda=1 (accept only ties with the max) results stay close to the
// non-ICA solve on the tiny example.
func TestICAUpdateChangesSeeds(t *testing.T) {
	g := paperGraph()
	on := DefaultConfig()
	off := DefaultConfig()
	off.ICAUpdate = false
	mOn, err := New(g, on)
	if err != nil {
		t.Fatal(err)
	}
	mOff, err := New(g, off)
	if err != nil {
		t.Fatal(err)
	}
	rOn, rOff := mOn.Run(), mOff.Run()
	// Both must classify the example correctly.
	for name, r := range map[string]*Result{"ica": rOn, "plain": rOff} {
		pred := r.Predict()
		if pred[2] != 1 || pred[3] != 0 {
			t.Errorf("%s: predictions wrong: %v", name, pred)
		}
	}
}

func TestRunClassOutOfRangePanics(t *testing.T) {
	m, err := New(paperGraph(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("RunClass(5) should panic")
		}
	}()
	m.RunClass(5)
}

// randomGraph builds a labelled random HIN for property tests.
func randomGraph(rng *rand.Rand, n, m, q int) *hin.Graph {
	g := hin.New()
	for c := 0; c < q; c++ {
		g.AddClass(string(rune('A' + c)))
	}
	for i := 0; i < n; i++ {
		f := make([]float64, 4)
		for d := range f {
			f[d] = rng.Float64()
		}
		g.AddNode("", f)
	}
	for k := 0; k < m; k++ {
		g.AddRelation(string(rune('r'))+string(rune('0'+k)), rng.Intn(2) == 0)
		edges := 1 + rng.Intn(3*n)
		for e := 0; e < edges; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(k, u, v)
			}
		}
	}
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.4 {
			g.SetLabels(i, rng.Intn(q))
		}
	}
	// Guarantee at least one labelled node.
	g.SetLabels(0, 0)
	return g
}
