package tmark

// Numerical-health guards for the iterative solve. The power iteration
// is numerically benign in exact arithmetic — every iterate lives on
// the simplex — so a NaN, an exploding residual or a vanishing column
// mass is always evidence of a fault: corrupt input that slipped past
// ingest validation, a misbehaving vector unit, or (in the chaos suite)
// a deliberate injection. Two tiers of probes watch for this:
//
// Always on (every path, free): the per-column simplex projection
// already computes the column mass, so a zero/NaN/Inf mass is detected
// at no extra cost, and the residual ρ is checked for finiteness as it
// is computed. Both fire BEFORE the iterate is committed (the blocked
// loops copy xn→x only after the checks pass), so at detection time the
// solver still holds the last healthy iteration — which is exactly the
// state the automatic retry resumes from, and exactly the state an
// interrupted Result reports.
//
// Opt-in (WithGuards): pre-normalisation mass drift, residual-series
// stagnation, and divergence. These cost a few comparisons per column
// per iteration and are off by default because they change when a
// marginal run stops (a stagnating run that used to grind to
// MaxIterations now stops early with ReasonStagnated).
//
// Recovery: a corruption fault in a batched class run triggers one
// automatic retry from the last good state with the AVX2 kernels
// demoted to the scalar reference bodies (WithScalarKernels) — if the
// fault came from the vectorised path, the retry completes on the
// reference path; a deterministic fault reproduces and the run stops
// with ReasonNumericalFault and the last healthy state. Stagnation and
// divergence are properties of the data, not the hardware, so they stop
// the run without a retry. In batched column solves (SolveColumns)
// faults are isolated per column instead: the faulting column retires
// with ColumnResult.Stopped = ErrNumericalFault and its last healthy
// state, and the other columns continue unharmed.

import (
	"errors"
	"fmt"
	"math"
)

// ErrNumericalFault reports a corrupted iterate: non-finite values or a
// collapsed column mass, detected before the iterate was committed.
var ErrNumericalFault = errors.New("tmark: numerical fault detected")

// ErrStagnated reports a residual series that stopped improving before
// reaching Epsilon (see GuardConfig.Stagnation).
var ErrStagnated = errors.New("tmark: residual stagnated before convergence")

// Fault kinds, recorded in Fault.Kind.
const (
	faultNonFinite  = "nonfinite"  // NaN/Inf mass or residual
	faultMassDrift  = "mass-drift" // pre-normalisation mass left the simplex
	faultDivergence = "divergence" // residual grew past DivergenceFactor × best
	faultStagnation = "stagnation" // residual series flat for a full window
)

// Fault is one detected numerical-health event, reported on
// Result.Faults. Class indexes the faulting class (or query column);
// Iter is the iteration at which the probe fired — the iterate of that
// iteration was discarded, so the surviving state is iteration Iter−1.
type Fault struct {
	Class int
	Iter  int
	Kind  string
}

func (f Fault) String() string {
	return fmt.Sprintf("class %d iteration %d: %s", f.Class, f.Iter, f.Kind)
}

// GuardConfig tunes the opt-in numerical-health probes; see WithGuards.
// A zero field disables its probe, so the zero value adds nothing to
// the always-on checks.
type GuardConfig struct {
	// MassTol faults an iterate whose pre-normalisation column mass
	// drifts further than this from 1. The update is a convex
	// combination of distributions, so the mass entering the simplex
	// projection is 1 up to accumulated rounding; a large drift means
	// the floats are no longer trustworthy.
	MassTol float64
	// Stagnation is the window length (in iterations) of the
	// flat-residual probe: when the last Stagnation residuals of a
	// column span a relative range below StagnationTol without reaching
	// Epsilon, the run stops with ReasonStagnated. 0 disables.
	Stagnation int
	// StagnationTol is the relative flatness threshold of the
	// stagnation window; used only when Stagnation > 0.
	StagnationTol float64
	// DivergenceFactor faults a column whose residual exceeds this
	// multiple of the best residual it has seen. The iteration map is a
	// contraction in the typical regime, so a residual growing orders
	// of magnitude past its best is numerically out of control. 0
	// disables.
	DivergenceFactor float64
	// NoRetry disables the automatic demoted retry after a corruption
	// fault; the run then stops at the first fault.
	NoRetry bool
}

// DefaultGuards returns the recommended probe thresholds: mass drift
// beyond 1e-6, a 20-iteration flat window at 1e-3 relative range, and
// divergence at 1000× the best residual.
func DefaultGuards() GuardConfig {
	return GuardConfig{
		MassTol:          1e-6,
		Stagnation:       20,
		StagnationTol:    1e-3,
		DivergenceFactor: 1e3,
	}
}

// WithGuards enables the opt-in numerical-health probes for this run.
// The always-on corruption checks (non-finite mass/residual) run
// regardless; see the package comments above for what each probe adds.
func WithGuards(g GuardConfig) RunOption {
	return func(o *runOptions) { o.guards = &g }
}

// runFault is the internal verdict of a guarded loop: the public fault
// record, the last-good checkpoint to retry from (corruption faults
// only — post-commit stops like stagnation keep the committed state and
// carry no snapshot), and whether a demoted retry could help.
type runFault struct {
	fault     Fault
	cp        *Checkpoint
	retryable bool
}

// reason maps the fault to the Reason/error pair it stops the run with.
func (f *runFault) reason() (Reason, error) {
	if f.fault.Kind == faultStagnation {
		return ReasonStagnated, ErrStagnated
	}
	return ReasonNumericalFault, ErrNumericalFault
}

// badMass reports whether a simplex projection failed outright (ok
// false: zero/NaN/Inf mass) or drifted past the optional tolerance.
func badMass(mass float64, ok bool, g *GuardConfig) (string, bool) {
	if !ok {
		return faultNonFinite, true
	}
	if g != nil && g.MassTol > 0 && math.Abs(mass-1) > g.MassTol {
		return faultMassDrift, true
	}
	return "", false
}

// nonFinite reports a NaN or Inf residual.
func nonFinite(rho float64) bool {
	return math.IsNaN(rho) || math.IsInf(rho, 0)
}

// stagnated reports whether the tail of a residual trace has been flat
// for a full window: the last g.Stagnation residuals span a relative
// range below g.StagnationTol. Called only for columns that have not
// converged, so a flat tail means the iteration is stuck, not done.
func stagnated(trace []float64, g *GuardConfig) bool {
	if g == nil || g.Stagnation <= 0 || len(trace) < g.Stagnation {
		return false
	}
	tail := trace[len(trace)-g.Stagnation:]
	lo, hi := tail[0], tail[0]
	for _, r := range tail[1:] {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	return hi-lo <= g.StagnationTol*hi
}

// diverged reports whether a residual has grown past the divergence
// factor times the best residual the column has seen.
func diverged(rho, best float64, g *GuardConfig) bool {
	return g != nil && g.DivergenceFactor > 0 && best > 0 && rho > g.DivergenceFactor*best
}
