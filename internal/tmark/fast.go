package tmark

// The solve-quality knob and the linearized fast tier. Quality selects
// how a query (or a whole run) trades accuracy for latency:
//
//	exact        — the plain fixed-point iteration; the reference answer.
//	accelerated  — the extrapolated power method (WithAcceleration):
//	               identical answers, vetted jump steps cut the committed
//	               iteration count.
//	fast         — the linearized single-solve tier (WithApproximate):
//	               z frozen at uniform, the tensor collapsed into one
//	               sparse matrix, ICA dropped. Approximate; see
//	               internal/accel.System for the bound.
//
// The fast tier shares one lazily built accel.System per model: the
// collapsed matrix has the tensor's stored-entry count, so building it
// costs one tensor sweep and is amortised across every fast query.

import (
	"context"
	"fmt"

	"tmark/internal/accel"
	"tmark/internal/sparse"
	"tmark/internal/vec"
)

// Quality names a solve tier. The zero value defers to the run's
// options (WithAcceleration / WithApproximate), so a ColumnQuery that
// never sets it behaves exactly as before the knob existed.
type Quality int

const (
	// QualityDefault inherits the tier from the run options.
	QualityDefault Quality = iota
	// QualityExact forces the plain fixed-point iteration.
	QualityExact
	// QualityAccelerated forces the extrapolated power method; answers
	// are exact (every committed iterate passes the plain run's probes).
	QualityAccelerated
	// QualityFast forces the linearized approximate tier.
	QualityFast
)

// ParseQuality maps the wire spelling of the quality knob to its tier.
// The empty string is QualityDefault; anything else unrecognised is an
// error — callers surface it as a 400, never a silent default.
func ParseQuality(s string) (Quality, error) {
	switch s {
	case "":
		return QualityDefault, nil
	case "exact":
		return QualityExact, nil
	case "accelerated":
		return QualityAccelerated, nil
	case "fast":
		return QualityFast, nil
	}
	return QualityDefault, fmt.Errorf("unknown quality %q (want exact, accelerated or fast)", s)
}

// String returns the wire spelling ("" for QualityDefault).
func (q Quality) String() string {
	switch q {
	case QualityExact:
		return "exact"
	case QualityAccelerated:
		return "accelerated"
	case QualityFast:
		return "fast"
	}
	return ""
}

// resolve folds the run options into a concrete tier.
func (q Quality) resolve(ro runOptions) Quality {
	if q != QualityDefault {
		return q
	}
	if ro.approximate {
		return QualityFast
	}
	if ro.accelerate {
		return QualityAccelerated
	}
	return QualityExact
}

// linearSystem returns the model's collapsed linear operator, building
// it on first use. The build freezes z at uniform — the relation
// distribution every solve starts from — and folds it through the
// tensor (tensor.CollapseZ), so it costs one pass over the stored
// entries plus one sparse assembly. Safe for concurrent callers.
func (m *Model) linearSystem() (*accel.System, error) {
	m.linOnce.Do(func() {
		zbar := vec.Uniform(m.graph.M())
		rows, cols, vals, dangle := m.o.CollapseZ(zbar)
		var w accel.Matvec
		if m.cfg.Beta() > 0 && m.w != nil {
			w = m.w
		}
		m.lin, m.linErr = accel.NewSystem(m.graph.N(), rows, cols, vals, dangle, w, m.cfg.Alpha, m.cfg.Beta())
	})
	return m.lin, m.linErr
}

// linScratch builds the parallel-matvec scratch of the fast tier, or
// nil for a serial run.
func (rs *runScratch) linScratch() *sparse.MulScratch {
	if rs.pool == nil {
		return nil
	}
	return sparse.NewMulScratch(rs.workers)
}

// solveFastColumn answers one query through the linearized tier: one
// Jacobi solve for x, then a single relation contraction for z. The
// per-query ICA reseed does not apply (the tier's system is built from
// the restart vector alone), which is part of the documented
// approximation.
func (m *Model) solveFastColumn(ctx context.Context, cs columnState, ms *sparse.MulScratch, rs *runScratch) ColumnResult {
	cr := ColumnResult{Seeds: cs.seeds, Restart: cs.l}
	if err := columnErr(ctx, cs.ctx); err != nil {
		cr.X, cr.Z = vec.Clone(cs.l), vec.Uniform(m.graph.M())
		cr.Stopped = err
		return cr
	}
	sys, err := m.linearSystem()
	if err != nil {
		cr.X, cr.Z = vec.Clone(cs.l), vec.Uniform(m.graph.M())
		cr.Stopped = err
		return cr
	}
	x, trace, rho := sys.Solve(rs.pool, ms, cs.l, nil, m.cfg.Epsilon, m.cfg.MaxIterations)
	z := vec.New(m.graph.M())
	m.r.Apply(x, z)
	vec.Normalize1(z)
	cr.X, cr.Z = x, z
	cr.Trace = trace
	cr.Iterations = len(trace)
	cr.Converged = rho < m.cfg.Epsilon
	return cr
}

// runApproximate is the fast tier of the multi-class Run: every class
// is one linear solve plus one relation contraction. Classes are
// independent here — the ICA cross-class coupling is dropped by design —
// so a cancelled context simply leaves the remaining classes at their
// seed state, like the sequential path.
func (m *Model) runApproximate(ctx context.Context, res *Result, rs *runScratch) error {
	sys, err := m.linearSystem()
	if err != nil {
		return err
	}
	ms := rs.linScratch()
	progress := rs.progressFn()
	for c := 0; c < m.graph.Q(); c++ {
		l, seeds := m.seedVector(c)
		cr := ClassResult{Class: c, Seeds: seeds, Restart: l}
		if ctx.Err() != nil {
			cr.X, cr.Z = vec.Clone(l), vec.Uniform(m.graph.M())
			res.Classes[c] = cr
			continue
		}
		x, trace, rho := sys.Solve(rs.pool, ms, l, nil, m.cfg.Epsilon, m.cfg.MaxIterations)
		z := vec.New(m.graph.M())
		m.r.Apply(x, z)
		vec.Normalize1(z)
		cr.X, cr.Z = x, z
		cr.Trace = trace
		cr.Iterations = len(trace)
		cr.Converged = rho < m.cfg.Epsilon
		if progress != nil {
			for i, r := range trace {
				progress(c, i+1, r)
			}
		}
		res.Classes[c] = cr
	}
	return nil
}
