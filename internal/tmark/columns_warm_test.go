package tmark

import (
	"context"
	"math"
	"strings"
	"testing"

	"tmark/internal/vec"
)

// TestColumnWarmStartSameModel: re-solving a query seeded with its own
// converged (x̄, z̄) must converge immediately (the state is already a
// fixed point) and land on the same answer.
func TestColumnWarmStartSameModel(t *testing.T) {
	m, err := New(labelledChain(40, 5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := ColumnQuery{Seeds: []int{0, 5, 10}}
	cold, err := m.SolveColumn(context.Background(), q)
	if err != nil {
		t.Fatalf("cold SolveColumn: %v", err)
	}
	q.Warm = &WarmStart{X: cold.X, Z: cold.Z}
	warm, err := m.SolveColumn(context.Background(), q)
	if err != nil {
		t.Fatalf("warm SolveColumn: %v", err)
	}
	if !warm.Converged {
		t.Fatal("warm solve did not converge")
	}
	if warm.Iterations > 2 {
		t.Fatalf("warm restart from own fixed point took %d iterations", warm.Iterations)
	}
	if d := vec.Diff1(cold.X, warm.X); d > 1e-9 {
		t.Fatalf("warm X drifted %v from cold", d)
	}
	if d := vec.Diff1(cold.Z, warm.Z); d > 1e-9 {
		t.Fatalf("warm Z drifted %v from cold", d)
	}
}

// TestColumnWarmStartBatchMatchesSequential: warm queries through the
// blocked SolveColumns path must behave exactly like the sequential
// SolveColumn path (the batch-vs-seq bitwise contract extends to warm
// starts).
func TestColumnWarmStartBatchMatchesSequential(t *testing.T) {
	m, err := New(labelledChain(40, 5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	queries := []ColumnQuery{
		{Seeds: []int{0, 5}},
		{Seeds: []int{10, 15}},
	}
	colds, err := m.SolveColumns(context.Background(), queries)
	if err != nil {
		t.Fatalf("cold SolveColumns: %v", err)
	}
	for i := range queries {
		queries[i].Warm = &WarmStart{X: colds[i].X, Z: colds[i].Z}
	}
	batch, err := m.SolveColumns(context.Background(), queries)
	if err != nil {
		t.Fatalf("warm SolveColumns: %v", err)
	}
	for i, q := range queries {
		seq, err := m.SolveColumn(context.Background(), q)
		if err != nil {
			t.Fatalf("warm SolveColumn %d: %v", i, err)
		}
		for j := range seq.X {
			if batch[i].X[j] != seq.X[j] {
				t.Fatalf("query %d x[%d]: batch %v, seq %v (bitwise)", i, j, batch[i].X[j], seq.X[j])
			}
		}
		if batch[i].Iterations != seq.Iterations {
			t.Fatalf("query %d: batch %d iterations, seq %d", i, batch[i].Iterations, seq.Iterations)
		}
	}
}

// TestColumnWarmStartValidation: malformed warm states are rejected
// before any iteration runs.
func TestColumnWarmStartValidation(t *testing.T) {
	m, err := New(labelledChain(20, 5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n, mm := 20, m.graph.M()
	good := func() *WarmStart {
		return &WarmStart{X: vec.Uniform(n), Z: vec.Uniform(mm)}
	}
	cases := []struct {
		name string
		warm *WarmStart
		want string
	}{
		{"short x", &WarmStart{X: vec.Uniform(n - 1), Z: vec.Uniform(mm)}, "warm start"},
		{"short z", &WarmStart{X: vec.Uniform(n), Z: vec.Uniform(mm + 1)}, "warm start"},
		{"nan x", func() *WarmStart { w := good(); w.X[3] = math.NaN(); return w }(), "finite"},
		{"negative z", func() *WarmStart { w := good(); w.Z[0] = -1; return w }(), "non-negative"},
		{"zero mass", &WarmStart{X: vec.New(n), Z: vec.Uniform(mm)}, "no mass"},
	}
	for _, tc := range cases {
		q := ColumnQuery{Seeds: []int{0}, Warm: tc.warm}
		if _, err := m.SolveColumn(context.Background(), q); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	// The warm vectors are copied: mutating the caller's slices after
	// the call must not affect a later solve.
	w := good()
	q := ColumnQuery{Seeds: []int{0}, Warm: w}
	r1, err := m.SolveColumn(context.Background(), q)
	if err != nil {
		t.Fatalf("SolveColumn: %v", err)
	}
	w.X[0] = math.NaN() // would poison a solve that aliased it
	r2, err := m.SolveColumn(context.Background(), ColumnQuery{Seeds: []int{0}, Warm: good()})
	if err != nil {
		t.Fatalf("SolveColumn after mutation: %v", err)
	}
	if d := vec.Diff1(r1.X, r2.X); d > 0 {
		t.Fatalf("solves diverged by %v after caller-side mutation", d)
	}
}
