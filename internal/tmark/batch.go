package tmark

// The batched multi-class solver: all q classes advance in lockstep
// through blocked (SpMM-style) kernels. The per-class node distributions
// are interleaved into one node-major n×b block X (entry (i, c) at
// i*b+c) and the link-type distributions into an m×b block Z, so each
// per-iteration kernel streams every tensor entry / CSR row once and
// applies it to all b active class columns — the kernels are
// memory-bandwidth-bound, so this removes the q-fold re-streaming of the
// sequential path. Classes whose residual drops below Epsilon retire:
// their columns are gathered out to the final per-class vectors and the
// block is compacted, so late iterations only pay for stragglers.
//
// Per class the batched solver is bitwise identical to the sequential
// reference path for a fixed worker count: every blocked kernel
// accumulates each column's floats in the single-vector order (see
// internal/tensor/batch.go), the per-column simplex projection and
// residual mirror vec.Normalize1/Diff1, and retirement only removes a
// column's storage — never changes another column's arithmetic, since no
// kernel mixes columns.

import (
	"context"
	"math"

	"tmark/internal/accel"
	"tmark/internal/vec"
)

// batchRun is the working set of one batched solve. Blocked buffers are
// allocated for q columns and re-sliced to the active stride b as
// classes retire; per-class vectors (restart, finals, traces) stay full
// length for the result.
type batchRun struct {
	n, m, q int
	b       int   // active column count
	classOf []int // column -> class, ascending; len b
	slot    []int // class -> active column, or -1 once retired

	x, z   []float64 // current blocked state, stride b
	xn, zn []float64 // next iterates
	tmp    []float64 // feature-channel product W·X
	l      []vec.Vector
	seeds  []int
	xOut   []vec.Vector // final per-class x̄, filled at retirement/finish
	zOut   []vec.Vector
	conv   []bool
	iters  []int
	trace  [][]float64
	keep   []int // compaction scratch
	argmax []int // reseed scratch: node -> argmax class

	rhos []float64 // per-column residuals of the current iteration
	best []float64 // per-class best residual seen (divergence guard)

	t0   int // completed iterations restored from a checkpoint
	done int // last completed iteration (snapshot cursor)
}

// runBatched solves every class through the blocked lockstep loop; a nil
// warm starts every class cold from its seed vector. It fills res with
// per-class ClassResults exactly like the sequential paths and returns
// the guard verdict that stopped the loop, if any.
func (m *Model) runBatched(ctx context.Context, res *Result, warm warmFn, rs *runScratch) *runFault {
	n, mm, q := m.graph.N(), m.graph.M(), m.graph.Q()
	st := &batchRun{
		n: n, m: mm, q: q, b: q,
		classOf: make([]int, q),
		slot:    make([]int, q),
		x:       make([]float64, n*q),
		z:       make([]float64, mm*q),
		xn:      make([]float64, n*q),
		zn:      make([]float64, mm*q),
		tmp:     make([]float64, n*q),
		l:       make([]vec.Vector, q),
		seeds:   make([]int, q),
		xOut:    make([]vec.Vector, q),
		zOut:    make([]vec.Vector, q),
		conv:    make([]bool, q),
		iters:   make([]int, q),
		trace:   make([][]float64, q),
		keep:    make([]int, 0, q),
		argmax:  make([]int, n),
		rhos:    make([]float64, q),
		best:    make([]float64, q),
	}
	uniformZ := vec.Uniform(mm)
	for c := 0; c < q; c++ {
		l, seeds := m.seedVector(c)
		st.l[c], st.seeds[c] = l, seeds
		st.xOut[c], st.zOut[c] = vec.New(n), vec.New(mm)
		st.classOf[c], st.slot[c] = c, c
		st.best[c] = math.Inf(1)
		x, z := l, uniformZ
		if warm != nil {
			if wx, wz, wl, ok := warm(c); ok {
				x, z = wx, wz
				if wl != nil {
					st.l[c] = wl
				}
			}
		}
		vec.ScatterCol(x, st.x, c, q)
		vec.ScatterCol(z, st.z, c, q)
	}
	if cp := rs.opts.resume; cp != nil {
		m.restoreBatch(st, cp)
	}

	flt := m.iterateBatched(ctx, st, rs)

	// An interrupted run flushes one final snapshot so a later process
	// can resume from exactly the state this one reports: drains and
	// kills lose at most the iterations since the last completed one.
	if rs.opts.ckSink != nil && st.b > 0 && ctx.Err() != nil {
		m.saveCheckpoint(rs.opts.ckSink, m.snapshotBatch(st))
	}

	// Gather still-active columns (iteration cap or cancellation); retired
	// classes were gathered when they converged.
	for col := 0; col < st.b; col++ {
		c := st.classOf[col]
		vec.GatherCol(st.x, col, st.b, st.xOut[c])
		vec.GatherCol(st.z, col, st.b, st.zOut[c])
	}
	for c := 0; c < q; c++ {
		res.Classes[c] = ClassResult{
			Class: c, X: st.xOut[c], Z: st.zOut[c],
			Iterations: st.iters[c], Converged: st.conv[c],
			Trace: st.trace[c], Seeds: st.seeds[c], Restart: st.l[c],
		}
	}
	return flt
}

// iterateBatched is the blocked lockstep loop. The context is checked
// once per iteration, like the sequential loops, so a cancelled run
// keeps the state of the last completed iteration. The numerical-health
// probes run before the iterate is committed (copy xn→x), so a fault
// verdict always leaves the block at the last healthy iteration — the
// snapshot it carries is what the automatic demoted retry resumes from.
//
// With WithAcceleration, each class additionally carries an
// extrapolator over its committed (x, z) sequence. A pending candidate
// is scattered into the block after the ICA reseed (which must read
// committed state only) and vetted by riding one ordinary pass: the
// kernels map the candidate u to F(u), and the candidate is accepted
// exactly when the pass stays healthy and d(u, F(u)) is strictly below
// the class's last committed residual. An accepted pass commits like
// any other; a rejected pass restores the pre-jump column into the next
// block before the wholesale commit and touches no bookkeeping, so the
// committed iterate/trace sequence of a class whose every proposal is
// rejected is bitwise identical to the plain run's.
func (m *Model) iterateBatched(ctx context.Context, st *batchRun, rs *runScratch) *runFault {
	alpha, beta := m.cfg.Alpha, m.cfg.Beta()
	rel := 1 - alpha - beta
	n, mm := st.n, st.m
	g := rs.opts.guards
	progress := rs.progressFn()
	var ex []*accel.Extrapolator
	var jumped, vetoed []bool // by class, valid within one pass
	if rs.opts.accelerate {
		ex = make([]*accel.Extrapolator, st.q)
		for c := range ex {
			ex[c] = accel.NewExtrapolator(n, mm, &rs.accel)
		}
		jumped = make([]bool, st.q)
		vetoed = make([]bool, st.q)
	}
	// dropJumps undoes every candidate still scattered in the current
	// block — a corruption fault on some other column must snapshot (and
	// retry from) committed state only, never a candidate under vet.
	dropJumps := func() {
		for col := 0; col < st.b; col++ {
			if c := st.classOf[col]; jumped[c] {
				ex[c].RestoreInto(st.x, st.z, col, st.b)
				ex[c].Reject()
				jumped[c] = false
			}
		}
	}
	corrupt := func(col, t int, kind string) *runFault {
		if ex != nil {
			dropJumps()
		}
		regNumericalFaults.Inc()
		return &runFault{
			fault:     Fault{Class: st.classOf[col], Iter: t, Kind: kind},
			cp:        m.snapshotBatch(st),
			retryable: true,
		}
	}
	for t := st.t0 + 1; t <= m.cfg.MaxIterations; t++ {
		if ctx.Err() != nil {
			break
		}
		if m.cfg.ICAUpdate && t > 2 {
			// Re-running the reseed after a resume is safe: it recomputes
			// every restart vector from the prediction state alone, never
			// reading the previous l, so it is idempotent on a fixed block.
			rs.reseedCols(st.q*n, st.q, func() { m.icaReseedBatch(st) })
		}
		b := st.b
		x, z, xn, zn := st.x[:n*b], st.z[:mm*b], st.xn[:n*b], st.zn[:mm*b]
		// Scatter pending extrapolated candidates — after the reseed, so
		// the cross-class coupling always reads committed state.
		anyJump := false
		if ex != nil {
			for col := 0; col < b; col++ {
				c := st.classOf[col]
				if ex[c].Pending() {
					ex[c].ScatterCandidate(x, z, col, b)
					jumped[c], vetoed[c] = true, false
					anyJump = true
				}
			}
		}
		if rel > 0 {
			rs.applyNodeBatch(m.o, x, z, xn, b)
			vec.Scale(rel, xn)
		} else {
			vec.Fill(xn, 0)
		}
		if beta > 0 && m.w != nil {
			tmp := st.tmp[:n*b]
			rs.mulFeatureBatch(x, tmp, b)
			vec.Axpy(beta, tmp, xn)
		}
		for col := 0; col < b; col++ {
			c := st.classOf[col]
			vec.AxpyCol(alpha, st.l[c], xn, col, b)
			// The same simplex projection as the sequential step: rounding
			// in the dangling-mass closed forms compounds across
			// iterations, and the fixed point has unit mass anyway. The
			// projection's by-product — the pre-normalisation mass — is the
			// corruption probe: a zero/NaN/Inf or drifting mass faults the
			// iterate before anything is committed.
			mass, ok := vec.Normalize1ColMass(xn, col, b)
			if kind, bad := badMass(mass, ok, g); bad {
				// A candidate under vet faults only itself: the jump is
				// rejected below, not escalated to a model fault.
				if ex != nil && jumped[c] {
					vetoed[c] = true
					continue
				}
				return corrupt(col, t, kind)
			}
		}
		rs.applyRelationBatch(m.r, xn, zn, b)
		for col := 0; col < b; col++ {
			c := st.classOf[col]
			if ex != nil && jumped[c] && vetoed[c] {
				continue
			}
			mass, ok := vec.Normalize1ColMass(zn, col, b)
			if kind, bad := badMass(mass, ok, g); bad {
				if ex != nil && jumped[c] {
					vetoed[c] = true
					continue
				}
				return corrupt(col, t, kind)
			}
		}
		// Residual probe pass: every column's ρ must be finite before any
		// column's bookkeeping commits, so a fault never leaves a torn
		// trace behind.
		rhos := st.rhos[:b]
		for col := 0; col < b; col++ {
			c := st.classOf[col]
			if ex != nil && jumped[c] && vetoed[c] {
				continue
			}
			rho := vec.Diff1Col(x, xn, col, b) + vec.Diff1Col(z, zn, col, b)
			if nonFinite(rho) {
				if ex != nil && jumped[c] {
					vetoed[c] = true
					continue
				}
				return corrupt(col, t, faultNonFinite)
			}
			rhos[col] = rho
		}
		// The vet verdicts. A jumped column's residual is d(u, F(u));
		// accept exactly when the pass stayed healthy and it improves
		// strictly on the class's last committed residual — the monotone
		// guarantee that the accelerated run can never take more committed
		// iterations than the plain one. A rejected column gets its
		// pre-jump state restored into the next block, so the wholesale
		// commit below re-installs the last committed iterate.
		if anyJump {
			for col := 0; col < b; col++ {
				c := st.classOf[col]
				if !jumped[c] {
					continue
				}
				last := math.Inf(1)
				if tr := st.trace[c]; len(tr) > 0 {
					last = tr[len(tr)-1]
				}
				if !vetoed[c] && rhos[col] < last {
					ex[c].Accept()
				} else {
					ex[c].RestoreInto(xn, zn, col, b)
					ex[c].Reject()
					vetoed[c] = true
				}
				jumped[c] = false
			}
		}
		retired := false
		for col := 0; col < b; col++ {
			c := st.classOf[col]
			if ex != nil && vetoed[c] {
				// Rejected pass: nothing committed for this class, so no
				// trace entry, no iteration count, no convergence test.
				continue
			}
			rho := rhos[col]
			st.trace[c] = append(st.trace[c], rho)
			st.iters[c]++
			if progress != nil {
				progress(c, st.iters[c], rho)
			}
			if rho < m.cfg.Epsilon {
				st.conv[c] = true
				retired = true
			}
		}
		copy(x, xn)
		copy(z, zn)
		st.done = t
		// The opt-in series probes run post-commit: divergence and
		// stagnation are verdicts about the (valid) residual series, so
		// the committed state is exactly what the stopped run reports,
		// and neither is retryable — they reproduce deterministically.
		for col := 0; col < b; col++ {
			c := st.classOf[col]
			if st.conv[c] || (ex != nil && vetoed[c]) {
				continue
			}
			rho := rhos[col]
			if diverged(rho, st.best[c], g) {
				regNumericalFaults.Inc()
				return &runFault{fault: Fault{Class: c, Iter: t, Kind: faultDivergence}}
			}
			if rho < st.best[c] {
				st.best[c] = rho
			}
			if stagnated(st.trace[c], g) {
				regStagnations.Inc()
				return &runFault{fault: Fault{Class: c, Iter: t, Kind: faultStagnation}}
			}
		}
		// Feed the extrapolators the freshly committed iterates and let
		// them propose for the next pass — before retirement compacts the
		// column mapping.
		if ex != nil {
			for col := 0; col < b; col++ {
				c := st.classOf[col]
				vetoed[c] = false
				if st.conv[c] {
					continue
				}
				// Observe runs even through a shutoff cooldown — the committed
				// iterates are what count the cooldown down; Propose no-ops
				// until it expires.
				ex[c].Observe(x, z, col, b)
				ex[c].Propose()
			}
		}
		if retired {
			st.retireConverged()
			if st.b == 0 {
				break
			}
		}
		if sink := rs.opts.ckSink; sink != nil && rs.opts.ckEvery > 0 && t%rs.opts.ckEvery == 0 && st.b > 0 {
			m.saveCheckpoint(sink, m.snapshotBatch(st))
		}
	}
	return nil
}

// retireConverged gathers every freshly converged column into its final
// per-class vectors and left-packs the surviving columns, shrinking the
// active stride. Compaction moves each surviving value to an offset no
// greater than its source (i·b′+nc ≤ i·b+keep[nc] for b′ < b), so the
// in-place repack never overwrites unread state.
func (st *batchRun) retireConverged() {
	st.keep = st.keep[:0]
	for col := 0; col < st.b; col++ {
		c := st.classOf[col]
		if st.conv[c] {
			vec.GatherCol(st.x, col, st.b, st.xOut[c])
			vec.GatherCol(st.z, col, st.b, st.zOut[c])
			st.slot[c] = -1
			continue
		}
		st.keep = append(st.keep, col)
	}
	if len(st.keep) == st.b {
		return
	}
	vec.CompactCols(st.x, st.n, st.b, st.keep)
	vec.CompactCols(st.z, st.m, st.b, st.keep)
	for nc, oc := range st.keep {
		c := st.classOf[oc]
		st.classOf[nc] = c
		st.slot[c] = nc
	}
	st.b = len(st.keep)
	st.classOf = st.classOf[:st.b]
}

// xAt reads node i of class c's current distribution: from the active
// block while the class iterates, from the frozen final once retired.
// The reseed is the one place that needs cross-class reads, and it must
// see retired classes too — the sequential icaReseedAll reads (and
// rewrites the restart vector of) converged classes every pass.
func (st *batchRun) xAt(c, i int) float64 {
	if s := st.slot[c]; s >= 0 {
		return st.x[i*st.b+s]
	}
	return st.xOut[c][i]
}

// icaReseedBatch rebuilds every class's restart vector from the blocked
// prediction state, mirroring icaReseedAll statement for statement:
// unlabelled node i joins class c's seeds when c is i's argmax class and
// x[i] clears the confidence threshold λ·(best unlabelled probability of
// class c).
func (m *Model) icaReseedBatch(st *batchRun) {
	n, q := st.n, st.q
	for i := 0; i < n; i++ {
		best, bestC := -1.0, -1
		for c := 0; c < q; c++ {
			if v := st.xAt(c, i); v > best {
				best, bestC = v, c
			}
		}
		st.argmax[i] = bestC
	}
	for c := 0; c < q; c++ {
		maxUnlabeled := 0.0
		for i := 0; i < n; i++ {
			if v := st.xAt(c, i); !m.graph.Labeled(i) && v > maxUnlabeled {
				maxUnlabeled = v
			}
		}
		threshold := m.cfg.Lambda * maxUnlabeled
		l := st.l[c]
		count := 0
		for i := range l {
			accept := m.graph.HasLabel(i, c)
			if !accept && !m.graph.Labeled(i) && maxUnlabeled > 0 {
				accept = st.argmax[i] == c && st.xAt(c, i) > threshold
			}
			if accept {
				l[i] = 1
				count++
			} else {
				l[i] = 0
			}
		}
		if count == 0 {
			vec.Fill(l, 1/float64(len(l)))
			continue
		}
		vec.Scale(1/float64(count), l)
	}
}

// snapshotBatch deep-copies the batched working set into a Checkpoint.
// st.done is the snapshot's iteration cursor: on the periodic cadence it
// equals the just-committed iteration, and at a pre-commit fault it still
// names the last healthy one, so a resume always replays from valid
// state. Retired classes are stored with their frozen finals; the ICA
// reseed reads them (through xAt), so resuming reproduces the exact
// cross-class coupling of the uninterrupted run.
func (m *Model) snapshotBatch(st *batchRun) *Checkpoint {
	cp := &Checkpoint{
		ConfigHash: m.cfg.checkpointHash(),
		Kind:       ckKindClasses,
		N:          st.n, M: st.m, Q: st.q,
		Iter:    st.done,
		B:       st.b,
		ClassOf: append([]int(nil), st.classOf[:st.b]...),
		State:   make([]uint8, st.q),
		Iters:   append([]int(nil), st.iters...),
		Seeds:   append([]int(nil), st.seeds...),
		X:       append([]float64(nil), st.x[:st.n*st.b]...),
		Z:       append([]float64(nil), st.z[:st.m*st.b]...),
		L:       make([]float64, st.q*st.n),
		XOut:    make([][]float64, st.q),
		ZOut:    make([][]float64, st.q),
		Trace:   make([][]float64, st.q),
	}
	for c := 0; c < st.q; c++ {
		copy(cp.L[c*st.n:(c+1)*st.n], st.l[c])
		if st.slot[c] < 0 {
			cp.State[c] = 1
			cp.XOut[c] = append([]float64(nil), st.xOut[c]...)
			cp.ZOut[c] = append([]float64(nil), st.zOut[c]...)
		}
		cp.Trace[c] = append([]float64(nil), st.trace[c]...)
	}
	return cp
}

// restoreBatch loads a class-run checkpoint into the freshly initialised
// working set, replacing the cold/warm seed state. It panics on a
// checkpoint that does not belong to this model — ResumeFrom documents
// the contract, and Model.ValidateCheckpoint probes without panicking.
func (m *Model) restoreBatch(st *batchRun, cp *Checkpoint) {
	if err := m.ValidateCheckpoint(cp); err != nil {
		panic(err.Error())
	}
	st.b = cp.B
	st.classOf = st.classOf[:st.b]
	copy(st.classOf, cp.ClassOf)
	for c := range st.slot {
		st.slot[c] = -1
	}
	for col, c := range st.classOf {
		st.slot[c] = col
	}
	copy(st.x[:st.n*st.b], cp.X)
	copy(st.z[:st.m*st.b], cp.Z)
	for c := 0; c < st.q; c++ {
		copy(st.l[c], cp.L[c*st.n:(c+1)*st.n])
		st.iters[c] = cp.Iters[c]
		st.seeds[c] = cp.Seeds[c]
		st.trace[c] = append([]float64(nil), cp.Trace[c]...)
		// The divergence guard compares against the best residual seen so
		// far; rebuilding it from the restored trace matches what the
		// uninterrupted run would hold at this iteration.
		st.best[c] = math.Inf(1)
		for _, r := range st.trace[c] {
			if r < st.best[c] {
				st.best[c] = r
			}
		}
		if cp.State[c] != 0 {
			st.conv[c] = cp.State[c] == 1
			copy(st.xOut[c], cp.XOut[c])
			copy(st.zOut[c], cp.ZOut[c])
		}
	}
	st.t0, st.done = cp.Iter, cp.Iter
}
