package tmark

import (
	"context"
	"fmt"
	"testing"
	"time"

	"tmark/internal/obs"
)

// BenchmarkCollectorOverhead guards the cost of telemetry: the "on"
// sub-benchmark runs the solver with a live collector (WithStats), the
// "off" one without. The two must stay within a few percent of each
// other — the disabled path is nil-check branches only, and the enabled
// path only adds driver-side clock reads plus atomic adds per kernel
// call.
func BenchmarkCollectorOverhead(b *testing.B) {
	g := benchGraph(500)
	m, err := New(g, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Run()
		}
	})
	b.Run("on", func(b *testing.B) {
		b.ReportAllocs()
		var st RunStats
		for i := 0; i < b.N; i++ {
			m.RunContext(context.Background(), WithStats(&st))
		}
	})
}

// BenchmarkRunStats is the `make bench-stats` entry point: a Workers
// sweep with the collector on, reporting the per-kernel wall-time split
// as benchmark metrics (kernel_<name>_ms per run) and logging the full
// breakdown table once per worker count.
func BenchmarkRunStats(b *testing.B) {
	g := benchGraph(2000)
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := DefaultConfig()
		cfg.Gamma = 0 // dense feature channel is O(n^2) memory at this size
		cfg.Epsilon = 1e-300
		cfg.MaxIterations = 8
		cfg.Workers = workers
		m, err := New(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var st RunStats
			totals := make([]time.Duration, obs.NumKernels)
			for i := 0; i < b.N; i++ {
				m.RunContext(context.Background(), WithStats(&st))
				for _, ks := range st.Kernels {
					totals[ks.Kernel] += ks.Time
				}
			}
			for k, total := range totals {
				perRun := total / time.Duration(b.N)
				b.ReportMetric(float64(perRun)/1e6, "kernel_"+obs.Kernel(k).String()+"_ms")
			}
			b.Logf("last run breakdown:\n%s", st.String())
		})
	}
}
