package tmark

// Equivalence tests for the batched multi-class solver: per class it must
// reproduce the sequential reference paths bit for bit — same X, Z,
// residual traces, iteration counts and restart vectors — for every
// worker count, with and without the ICA update, for dense and CSR
// feature matrices, warm and cold, and under mid-run cancellation.

import (
	"context"
	"fmt"
	"testing"

	"tmark/internal/vec"
)

// assertResultsBitwise fails unless the two results are per-class bitwise
// identical in every numeric field.
func assertResultsBitwise(t *testing.T, label string, batched, seq *Result) {
	t.Helper()
	if len(batched.Classes) != len(seq.Classes) {
		t.Fatalf("%s: class counts %d vs %d", label, len(batched.Classes), len(seq.Classes))
	}
	for c := range seq.Classes {
		bc, sc := &batched.Classes[c], &seq.Classes[c]
		if d := vec.Diff1(bc.X, sc.X); d != 0 {
			t.Errorf("%s: class %d X diverged by %v", label, c, d)
		}
		if d := vec.Diff1(bc.Z, sc.Z); d != 0 {
			t.Errorf("%s: class %d Z diverged by %v", label, c, d)
		}
		if d := vec.Diff1(bc.Restart, sc.Restart); d != 0 {
			t.Errorf("%s: class %d Restart diverged by %v", label, c, d)
		}
		if bc.Iterations != sc.Iterations {
			t.Errorf("%s: class %d iterations %d vs %d", label, c, bc.Iterations, sc.Iterations)
		}
		if bc.Converged != sc.Converged {
			t.Errorf("%s: class %d converged %v vs %v", label, c, bc.Converged, sc.Converged)
		}
		if bc.Seeds != sc.Seeds {
			t.Errorf("%s: class %d seeds %d vs %d", label, c, bc.Seeds, sc.Seeds)
		}
		if len(bc.Trace) != len(sc.Trace) {
			t.Errorf("%s: class %d trace lengths %d vs %d", label, c, len(bc.Trace), len(sc.Trace))
			continue
		}
		for i := range sc.Trace {
			if bc.Trace[i] != sc.Trace[i] {
				t.Errorf("%s: class %d trace[%d] = %v vs %v", label, c, i, bc.Trace[i], sc.Trace[i])
				break
			}
		}
	}
}

// The batched solver must reproduce the sequential reference bitwise
// across worker counts (1 = serial kernels, 4 = sharded, 0 = GOMAXPROCS),
// ICA modes, and feature-matrix representations. Epsilon is set so some
// classes converge before others, exercising column retirement.
func TestBatchedMatchesSequentialBitwise(t *testing.T) {
	g := benchGraph(160)
	uneven := false // some case must retire classes at different iterations
	for _, ica := range []bool{true, false} {
		for _, topK := range []int{0, 8} { // dense W, CSR W
			for _, workers := range []int{1, 4, 0} {
				cfg := DefaultConfig()
				cfg.ICAUpdate = ica
				cfg.FeatureTopK = topK
				cfg.Workers = workers
				cfg.Epsilon = 1e-7
				cfg.MaxIterations = 60
				m, err := New(g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("ica=%v topK=%d workers=%d", ica, topK, workers)
				batched := m.RunContext(context.Background(), WithBatchedClasses(true))
				seq := m.RunContext(context.Background(), WithBatchedClasses(false))
				assertResultsBitwise(t, label, batched, seq)
				for c := range batched.Classes {
					if batched.Classes[c].Iterations != batched.Classes[0].Iterations {
						uneven = true
					}
				}
			}
		}
	}
	if !uneven {
		t.Error("no case retired classes at different iterations; column compaction untested")
	}
}

// The relation-only configuration (Gamma = 0, no feature matrix) must
// agree too — it skips the W kernel entirely.
func TestBatchedMatchesSequentialNoFeatureChannel(t *testing.T) {
	g := benchGraph(120)
	cfg := DefaultConfig()
	cfg.Gamma = 0
	cfg.Epsilon = 1e-7
	cfg.MaxIterations = 50
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batched := m.RunContext(context.Background(), WithBatchedClasses(true))
	seq := m.RunContext(context.Background(), WithBatchedClasses(false))
	assertResultsBitwise(t, "gamma=0", batched, seq)
}

// Warm starts must agree as well: both paths continue from the same
// previous solution.
func TestBatchedWarmMatchesSequential(t *testing.T) {
	g := benchGraph(120)
	cfg := DefaultConfig()
	cfg.Epsilon = 1e-7
	cfg.MaxIterations = 8 // stop early to leave room for the warm leg
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := m.Run()
	cfg2 := cfg
	cfg2.MaxIterations = 60
	m2, err := New(g, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	batched := m2.RunWarmContext(context.Background(), prev, WithBatchedClasses(true))
	seq := m2.RunWarmContext(context.Background(), prev, WithBatchedClasses(false))
	assertResultsBitwise(t, "warm", batched, seq)
}

// Under the ICA update both paths run the same lockstep schedule with one
// context check per iteration, so a deterministic mid-run cancellation
// must leave bitwise identical partial results.
func TestBatchedCancelMatchesSequentialLockstep(t *testing.T) {
	g := benchGraph(120)
	cfg := slowConfig(1)
	cfg.ICAUpdate = true
	cfg.MaxIterations = 40
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func(batch bool) *Result {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		return m.RunContext(ctx, WithBatchedClasses(batch),
			WithProgress(func(class, iter int, rho float64) {
				if class == 2 && iter == 5 {
					cancel()
				}
			}))
	}
	batched, seq := run(true), run(false)
	if batched.Stopped == nil || seq.Stopped == nil {
		t.Fatalf("cancellation not recorded: batched %v, sequential %v", batched.Stopped, seq.Stopped)
	}
	assertResultsBitwise(t, "cancel", batched, seq)
	for c := range batched.Classes {
		if got := batched.Classes[c].Iterations; got != 5 {
			t.Errorf("class %d ran %d iterations, want 5 (lockstep cancellation)", c, got)
		}
	}
}

// The batched reseed must reproduce icaReseedAll exactly — including for
// retired classes, whose distributions it reads from the frozen final
// vectors and whose restart vectors it keeps rewriting.
func TestIcaReseedBatchMatchesSequential(t *testing.T) {
	g := benchGraph(80)
	cfg := DefaultConfig()
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, mm, q := g.N(), g.M(), g.Q()

	// A mid-solve snapshot to reseed from.
	snap := m.RunContext(context.Background(), WithBatchedClasses(false))
	states := make([]classState, q)
	for c := 0; c < q; c++ {
		l, _ := m.seedVector(c)
		states[c] = classState{x: vec.Clone(snap.Classes[c].X), l: l}
	}

	// The batched mirror: class 1 retired (frozen in xOut), the rest live
	// in a compacted 3-column block.
	st := &batchRun{
		n: n, m: mm, q: q, b: q - 1,
		classOf: []int{0, 2, 3},
		slot:    []int{0, -1, 1, 2},
		x:       make([]float64, n*(q-1)),
		xOut:    make([]vec.Vector, q),
		l:       make([]vec.Vector, q),
		argmax:  make([]int, n),
	}
	for c := 0; c < q; c++ {
		l, _ := m.seedVector(c)
		st.l[c] = l
		if s := st.slot[c]; s >= 0 {
			vec.ScatterCol(states[c].x, st.x, s, st.b)
		} else {
			st.xOut[c] = vec.Clone(states[c].x)
		}
	}

	m.icaReseedAll(states)
	m.icaReseedBatch(st)
	for c := 0; c < q; c++ {
		if d := vec.Diff1(states[c].l, st.l[c]); d != 0 {
			t.Errorf("class %d reseeded restart diverged by %v", c, d)
		}
	}
}

// The batched path must be deterministic across repeated runs for a fixed
// worker count.
func TestBatchedDeterministic(t *testing.T) {
	g := benchGraph(120)
	cfg := DefaultConfig()
	cfg.Workers = 4
	cfg.MaxIterations = 20
	cfg.Epsilon = 1e-300
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := m.Run()
	for trial := 0; trial < 3; trial++ {
		got := m.Run()
		assertResultsBitwise(t, fmt.Sprintf("trial %d", trial), got, first)
	}
}
