package tmark

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// The decomposition must reconstruct the stationary score: this is a
// node-level fixed-point verification (Theorem 2/3 in action).
func TestExplainReconstructsFixedPoint(t *testing.T) {
	for _, ica := range []bool{true, false} {
		cfg := DefaultConfig()
		cfg.ICAUpdate = ica
		m, err := New(paperGraph(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		for c := 0; c < res.Q(); c++ {
			for i := 0; i < res.N(); i++ {
				e := m.Explain(res, i, c)
				if math.Abs(e.Residual) > 1e-6 {
					t.Errorf("ica=%v node %d class %d: residual %v too large (%s)", ica, i, c, e.Residual, e)
				}
				if e.Relational < -1e-12 || e.Feature < -1e-12 || e.Restart < -1e-12 {
					t.Errorf("negative channel contribution: %s", e)
				}
			}
		}
	}
}

func TestExplainSeedsCarryRestartMass(t *testing.T) {
	m, err := New(paperGraph(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	// p1 is the DM seed: its DM restart share must dominate its channels.
	e := m.Explain(res, 0, 0)
	if e.Restart <= e.Relational || e.Restart <= e.Feature {
		t.Errorf("seed node restart share should dominate: %s", e)
	}
	// p3 is unlabelled and (absent ICA promotion to exactly this class)
	// typically scores through the channels; its restart share cannot
	// exceed its total.
	e3 := m.Explain(res, 2, 0)
	if e3.Restart > e3.Score+1e-9 {
		t.Errorf("restart share exceeds score: %s", e3)
	}
}

func TestExplainAllMatchesExplain(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 20, 2, 3)
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	all := m.ExplainAll(res, 1)
	if len(all) != g.N() {
		t.Fatalf("ExplainAll returned %d entries", len(all))
	}
	for i := 0; i < g.N(); i += 3 {
		single := m.Explain(res, i, 1)
		batch := all[i]
		if math.Abs(single.Relational-batch.Relational) > 1e-12 ||
			math.Abs(single.Feature-batch.Feature) > 1e-12 ||
			math.Abs(single.Restart-batch.Restart) > 1e-12 {
			t.Errorf("node %d: batch and single explanations differ", i)
		}
	}
}

func TestExplainPanics(t *testing.T) {
	m, err := New(paperGraph(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	for name, f := range map[string]func(){
		"node range":  func() { m.Explain(res, 99, 0) },
		"class range": func() { m.Explain(res, 0, 9) },
		"batch class": func() { m.ExplainAll(res, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestExplanationString(t *testing.T) {
	e := Explanation{Node: 3, Class: 1, Score: 0.5, Relational: 0.2, Feature: 0.1, Restart: 0.2}
	s := e.String()
	if !strings.Contains(s, "node 3") || !strings.Contains(s, "0.5000") {
		t.Errorf("String = %q", s)
	}
}
