package tmark

import (
	"math/rand"
	"testing"

	"tmark/internal/hin"
	"tmark/internal/vec"
)

// labelledChain builds a ring network large enough that warm starting
// saves iterations.
func labelledChain(n int, labelEvery int) *hin.Graph {
	g := hin.New("a", "b")
	for i := 0; i < n; i++ {
		g.AddNode("", []float64{float64(i % 2), float64((i + 1) % 2)})
	}
	r := g.AddRelation("ring", false)
	for i := 0; i < n; i++ {
		g.AddEdge(r, i, (i+1)%n)
	}
	for i := 0; i < n; i += labelEvery {
		g.SetLabels(i, (i/labelEvery)%2)
	}
	return g
}

func TestRunWarmNilFallsBackToCold(t *testing.T) {
	m, err := New(paperGraph(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cold := m.Run()
	warm := m.RunWarm(nil)
	for c := range cold.Classes {
		if vec.Diff1(cold.Classes[c].X, warm.Classes[c].X) > 1e-12 {
			t.Errorf("RunWarm(nil) diverged from Run for class %d", c)
		}
	}
}

func TestRunWarmReachesSameFixedPoint(t *testing.T) {
	g := labelledChain(40, 5)
	for _, ica := range []bool{true, false} {
		cfg := DefaultConfig()
		cfg.ICAUpdate = ica
		m, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cold := m.Run()
		// Add one more label and re-solve, warm and cold, on the updated
		// graph: both must land on the same stationary point.
		g2 := labelledChain(40, 5)
		g2.SetLabels(7, 1)
		m2, err := New(g2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cold2 := m2.Run()
		warm2 := m2.RunWarm(cold)
		for c := range cold2.Classes {
			if d := vec.Diff1(cold2.Classes[c].X, warm2.Classes[c].X); d > 1e-5 {
				t.Errorf("ica=%v class %d: warm and cold fixed points differ by %v", ica, c, d)
			}
			if !vec.IsStochastic(warm2.Classes[c].X, 1e-8) {
				t.Errorf("ica=%v class %d: warm X not stochastic", ica, c)
			}
		}
		// Warm start from the converged answer to the SAME problem: nearly
		// instant without ICA; with ICA the pseudo-seed schedule replays
		// (l is rebuilt from t=3), so it may take a few extra iterations
		// but never more than the cold solve.
		warmSame := m2.RunWarm(cold2)
		if !ica && warmSame.MaxIterations() > 3 {
			t.Errorf("warm restart from own solution took %d iterations", warmSame.MaxIterations())
		}
		if warmSame.MaxIterations() > cold2.MaxIterations() {
			t.Errorf("ica=%v: warm restart slower than cold (%d vs %d)", ica, warmSame.MaxIterations(), cold2.MaxIterations())
		}
	}
}

func TestRunWarmSavesIterations(t *testing.T) {
	g := labelledChain(60, 6)
	cfg := DefaultConfig()
	cfg.ICAUpdate = false
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cold := m.Run()

	// Perturb one label; warm solving the slightly-changed problem should
	// need no more iterations than cold solving it.
	g2 := labelledChain(60, 6)
	g2.SetLabels(13, 0)
	m2, err := New(g2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	coldIters := m2.Run().MaxIterations()
	warmIters := m2.RunWarm(cold).MaxIterations()
	if warmIters > coldIters {
		t.Errorf("warm start took %d iterations, cold %d", warmIters, coldIters)
	}
}

func TestRunWarmDimensionMismatchPanics(t *testing.T) {
	m, err := New(paperGraph(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prev := &Result{n: 99, m: 1, q: 2}
	defer func() {
		if recover() == nil {
			t.Errorf("dimension mismatch should panic")
		}
	}()
	m.RunWarm(prev)
}

func TestRunWarmNewClassStartsCold(t *testing.T) {
	g := paperGraph()
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prev := m.Run()
	// Same graph with one extra class: the new class has no warm vectors.
	g2 := paperGraph()
	g2.AddClass("extra")
	m2, err := New(g2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := m2.RunWarm(prev)
	if len(res.Classes) != 3 {
		t.Fatalf("classes = %d, want 3", len(res.Classes))
	}
	for c, cr := range res.Classes {
		if !vec.IsStochastic(cr.X, 1e-8) {
			t.Errorf("class %d X not stochastic after mixed warm/cold start", c)
		}
	}
}

// Warm starting must be as accurate as cold solving on a real problem.
func TestRunWarmAccuracyParity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomGraph(rng, 30, 2, 3)
	cfg := DefaultConfig()
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cold := m.Run()
	warm := m.RunWarm(cold)
	coldPred := cold.Predict()
	warmPred := warm.Predict()
	for i := range coldPred {
		if coldPred[i] != warmPred[i] {
			t.Errorf("node %d: warm prediction %d differs from cold %d", i, warmPred[i], coldPred[i])
		}
	}
}
