package tmark

import (
	"math/rand"
	"testing"

	"tmark/internal/vec"
)

// With the ICA update disabled, Run (parallel per-class) and the lockstep
// machinery must be irrelevant: stepping a classState by hand reproduces
// solveClass exactly.
func TestStepMatchesSolveClass(t *testing.T) {
	g := paperGraph()
	cfg := DefaultConfig()
	cfg.ICAUpdate = false
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := m.RunClass(0)

	l, _ := m.seedVector(0)
	s := classState{
		x: vec.Clone(l), z: vec.Uniform(g.M()), l: l,
		xNext: vec.New(g.N()), zNext: vec.New(g.M()), tmp: vec.New(g.N()),
	}
	for it := 0; it < want.Iterations; it++ {
		m.step(&s, nil)
	}
	if d := vec.Diff1(s.x, want.X); d > 1e-12 {
		t.Errorf("manual stepping diverged from solveClass: %v", d)
	}
	if d := vec.Diff1(s.z, want.Z); d > 1e-12 {
		t.Errorf("manual z diverged: %v", d)
	}
}

// The lockstep run with ICA must stay inside the simplex for every class,
// converge on the worked example, and keep training labels correct.
func TestLockstepRunInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 4+rng.Intn(12), 1+rng.Intn(3), 2+rng.Intn(3))
		cfg := DefaultConfig()
		cfg.Alpha = 0.1 + 0.8*rng.Float64()
		cfg.Gamma = rng.Float64()
		cfg.Lambda = 0.3 + 0.7*rng.Float64()
		m, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		for _, cr := range res.Classes {
			if !vec.IsStochastic(cr.X, 1e-7) {
				t.Fatalf("trial %d: lockstep X left simplex", trial)
			}
			if !vec.IsStochastic(cr.Z, 1e-7) {
				t.Fatalf("trial %d: lockstep Z left simplex", trial)
			}
			if cr.Iterations == 0 || len(cr.Trace) != cr.Iterations {
				t.Fatalf("trial %d: inconsistent iteration bookkeeping", trial)
			}
		}
	}
}

// Cross-class exclusivity: after a reseed, an unlabelled node may carry
// pseudo-seed mass in at most one class.
func TestIcaReseedAllExclusive(t *testing.T) {
	g := paperGraph()
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n, q := g.N(), g.Q()
	states := make([]classState, q)
	for c := 0; c < q; c++ {
		l, _ := m.seedVector(c)
		states[c] = classState{x: vec.Clone(l), l: l}
	}
	// Give p3 (unlabelled) high confidence in both classes; only its
	// argmax class may seed it.
	states[0].x[2] = 0.4
	states[1].x[2] = 0.5
	m.icaReseedAll(states)
	seeded := 0
	for c := 0; c < q; c++ {
		if states[c].l[2] > 0 {
			seeded++
			if c != 1 {
				t.Errorf("p3 seeded class %d, want its argmax class 1", c)
			}
		}
	}
	if seeded > 1 {
		t.Errorf("p3 seeded %d classes, want at most 1", seeded)
	}
	for c := 0; c < q; c++ {
		if !vec.IsStochastic(states[c].l, 1e-12) {
			t.Errorf("class %d reseeded l not a distribution: %v", c, states[c].l)
		}
	}
	_ = n
}

// Labelled nodes never become pseudo-seeds of a different class.
func TestIcaReseedAllRespectsLabels(t *testing.T) {
	g := paperGraph()
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	states := make([]classState, g.Q())
	for c := 0; c < g.Q(); c++ {
		l, _ := m.seedVector(c)
		states[c] = classState{x: vec.Clone(l), l: l}
	}
	// p2 is labelled CV; even with huge DM confidence it must not seed DM.
	states[0].x[1] = 0.99
	m.icaReseedAll(states)
	if states[0].l[1] != 0 {
		t.Errorf("labelled node crossed classes in reseed")
	}
	if states[1].l[1] == 0 {
		t.Errorf("labelled node lost its own-class seed")
	}
}

// LiftedProbabilities keeps the argmax of Probabilities but increases row
// contrast, and its rows are distributions.
func TestLiftedProbabilities(t *testing.T) {
	res := func() *Result {
		m, err := New(paperGraph(), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return m.Run()
	}()
	raw := res.Probabilities()
	lifted := res.LiftedProbabilities()
	for i := 0; i < raw.Rows; i++ {
		rawRow, liftRow := raw.Row(i), lifted.Row(i)
		if vec.Argmax(rawRow) != vec.Argmax(liftRow) {
			t.Errorf("node %d: lift changed the argmax", i)
		}
		if !vec.IsStochastic(liftRow, 1e-9) {
			t.Errorf("node %d: lifted row not a distribution: %v", i, liftRow)
		}
		rawGap := rawRow[vec.Argmax(rawRow)] - minOf(rawRow)
		liftGap := liftRow[vec.Argmax(liftRow)] - minOf(liftRow)
		if liftGap+1e-12 < rawGap {
			t.Errorf("node %d: lift reduced contrast (%v -> %v)", i, rawGap, liftGap)
		}
	}
}

func minOf(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// A uniform row (no information) survives the lift unchanged rather than
// becoming NaN.
func TestLiftedProbabilitiesUniformRow(t *testing.T) {
	r := &Result{n: 2, m: 1, q: 2}
	r.Classes = []ClassResult{
		{Class: 0, X: vec.Vector{0.5, 0.5}},
		{Class: 1, X: vec.Vector{0.5, 0.5}},
	}
	p := r.LiftedProbabilities()
	for i := 0; i < 2; i++ {
		if !vec.IsStochastic(p.Row(i), 1e-12) {
			t.Errorf("uniform row mishandled: %v", p.Row(i))
		}
	}
}

// The CSR sparse feature channel must reproduce the dense-sparsified
// channel's solution exactly.
func TestSparseFeatureChannelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := randomGraph(rng, 25, 2, 3)
	cfg := DefaultConfig()
	cfg.FeatureTopK = 6 // exercises the CSR path
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	for _, cr := range res.Classes {
		if !vec.IsStochastic(cr.X, 1e-8) {
			t.Fatalf("sparse-channel X left simplex")
		}
	}
	// A second model over the same graph and config must agree exactly
	// (the CSR construction is deterministic).
	m2, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2 := m2.Run()
	for c := range res.Classes {
		if vec.Diff1(res.Classes[c].X, res2.Classes[c].X) != 0 {
			t.Fatalf("sparse channel not deterministic")
		}
	}
}
