package tmark

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"tmark/internal/vec"
)

func TestResultJSONRoundTrip(t *testing.T) {
	m, err := New(paperGraph(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadResultJSON(&buf)
	if err != nil {
		t.Fatalf("ReadResultJSON: %v", err)
	}
	if back.N() != res.N() || back.M() != res.M() || back.Q() != res.Q() {
		t.Fatalf("round trip changed shape")
	}
	for c := range res.Classes {
		if vec.Diff1(res.Classes[c].X, back.Classes[c].X) != 0 {
			t.Errorf("class %d X changed", c)
		}
		if vec.Diff1(res.Classes[c].Restart, back.Classes[c].Restart) != 0 {
			t.Errorf("class %d restart changed", c)
		}
		if back.Classes[c].Converged != res.Classes[c].Converged {
			t.Errorf("class %d metadata changed", c)
		}
	}
	// Predictions survive the round trip.
	p1, p2 := res.Predict(), back.Predict()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("prediction %d changed after round trip", i)
		}
	}
}

func TestResultFileWarmRestartWorkflow(t *testing.T) {
	g := paperGraph()
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	path := filepath.Join(t.TempDir(), "result.json")
	if err := res.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := LoadResultFile(path)
	if err != nil {
		t.Fatalf("LoadResultFile: %v", err)
	}
	// The loaded result warm-starts a new model on the same network.
	m2, err := New(paperGraph(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	warm := m2.RunWarm(loaded)
	for c := range warm.Classes {
		if !vec.IsStochastic(warm.Classes[c].X, 1e-8) {
			t.Errorf("warm-from-file class %d not stochastic", c)
		}
	}
}

func TestReadResultJSONRejects(t *testing.T) {
	cases := map[string]string{
		"garbage":     "nope",
		"bad version": `{"version":9,"n":1,"m":1,"q":0,"classes":[]}`,
		"class count": `{"version":1,"n":1,"m":1,"q":2,"classes":[]}`,
		"vector size": `{"version":1,"n":2,"m":1,"q":1,"classes":[{"class":0,"x":[1],"z":[1]}]}`,
		"restart size": `{"version":1,"n":1,"m":1,"q":1,
			"classes":[{"class":0,"x":[1],"z":[1],"restart":[0.5,0.5]}]}`,
	}
	for name, input := range cases {
		if _, err := ReadResultJSON(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestLoadResultFileMissing(t *testing.T) {
	if _, err := LoadResultFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Errorf("missing file should error")
	}
}
