package tmark

// Checkpoint/resume tests: a run interrupted mid-solve and resumed from
// its flushed snapshot must be bitwise identical to the uninterrupted
// run — across worker counts, kernel implementations (vectorised and
// scalar reference), ICA modes, and both batched loops (class run and
// column solve). The wire format is exercised on every resume: each
// snapshot passes through Encode/DecodeCheckpoint before it is restored.

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"tmark/internal/vec"
)

// ckConfig is a config whose runs take comfortably more than ten
// iterations, so a mid-run interruption at iteration 7 always happens.
func ckConfig(ica bool, workers int) Config {
	cfg := DefaultConfig()
	cfg.ICAUpdate = ica
	cfg.Epsilon = 1e-10
	cfg.MaxIterations = 40
	cfg.Workers = workers
	return cfg
}

// reloop round-trips a checkpoint through the binary format, failing the
// test on any decode error — every resume test goes through the wire.
func reloop(t *testing.T, cp *Checkpoint) *Checkpoint {
	t.Helper()
	if cp == nil {
		t.Fatal("no checkpoint was saved")
	}
	cp2, err := DecodeCheckpoint(cp.Encode())
	if err != nil {
		t.Fatalf("round-trip decode: %v", err)
	}
	return cp2
}

func TestKillAndResumeBitwiseIdentical(t *testing.T) {
	g := benchGraph(120)
	for _, ica := range []bool{true, false} {
		for _, workers := range []int{1, 4} {
			for _, scalar := range []bool{false, true} {
				label := fmt.Sprintf("ica=%v workers=%d scalar=%v", ica, workers, scalar)
				m, err := New(g, ckConfig(ica, workers))
				if err != nil {
					t.Fatal(err)
				}
				ref := m.RunContext(context.Background(), WithScalarKernels(scalar))

				// Interrupt the run once any class completes iteration 7;
				// the loop notices at the top of iteration 8 and flushes a
				// final snapshot of the completed state.
				ctx, cancel := context.WithCancel(context.Background())
				sink := &MemorySink{}
				killed := m.RunContext(ctx, WithScalarKernels(scalar),
					WithCheckpoint(sink, 3),
					WithProgress(func(class, iter int, rho float64) {
						if iter >= 7 {
							cancel()
						}
					}))
				cancel()
				if killed.Reason != ReasonCanceled {
					t.Fatalf("%s: interrupted run reason %v", label, killed.Reason)
				}

				resumed := m.RunContext(context.Background(), WithScalarKernels(scalar),
					ResumeFrom(reloop(t, sink.Last())))
				if resumed.Reason != ref.Reason {
					t.Errorf("%s: resumed reason %v, want %v", label, resumed.Reason, ref.Reason)
				}
				assertResultsBitwise(t, label, resumed, ref)
			}
		}
	}
}

// The drain flush must capture exactly the state the interrupted run
// reports: resuming from it and the interrupted Result itself agree on
// every class's partial iterate.
func TestInterruptedFlushMatchesReportedState(t *testing.T) {
	m, err := New(benchGraph(100), ckConfig(true, 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sink := &MemorySink{}
	killed := m.RunContext(ctx, WithCheckpoint(sink, 100), // cadence never fires
		WithProgress(func(class, iter int, rho float64) {
			if iter >= 5 {
				cancel()
			}
		}))
	cancel()
	cp := reloop(t, sink.Last())
	if cp.Iter != killed.Classes[0].Iterations {
		t.Fatalf("flushed checkpoint at iteration %d, result reports %d", cp.Iter, killed.Classes[0].Iterations)
	}
	for c := range killed.Classes {
		got := vec.New(cp.N)
		for col, cc := range cp.ClassOf {
			if cc == c {
				vec.GatherCol(cp.X, col, cp.B, got)
				if d := vec.Diff1(got, killed.Classes[c].X); d != 0 {
					t.Errorf("class %d: flushed X differs from reported X by %v", c, d)
				}
			}
		}
	}
}

func TestResumeThroughDirSink(t *testing.T) {
	m, err := New(benchGraph(100), ckConfig(true, 1))
	if err != nil {
		t.Fatal(err)
	}
	ref := m.RunContext(context.Background())

	dir := t.TempDir()
	sink := DirSink{Dir: dir}
	ctx, cancel := context.WithCancel(context.Background())
	m.RunContext(ctx, WithCheckpoint(sink, 2), WithProgress(func(class, iter int, rho float64) {
		if iter >= 6 {
			cancel()
		}
	}))
	cancel()

	cp, err := LoadCheckpointFile(sink.Path())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ValidateCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	resumed := m.RunContext(context.Background(), ResumeFrom(cp))
	assertResultsBitwise(t, "dir-sink", resumed, ref)

	// The sink replaces atomically: no temp files may linger.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(sink.Path()) {
			t.Errorf("unexpected file %q left in checkpoint dir", e.Name())
		}
	}
}

// Resuming across worker counts is allowed (Workers is excluded from the
// config hash); the result then matches a fresh run at the new worker
// count only up to shard-reduction rounding, so here we just assert the
// resume is accepted and completes.
func TestResumeAcrossWorkerCounts(t *testing.T) {
	g := benchGraph(100)
	m1, err := New(g, ckConfig(true, 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sink := &MemorySink{}
	m1.RunContext(ctx, WithCheckpoint(sink, 2), WithProgress(func(class, iter int, rho float64) {
		if iter >= 6 {
			cancel()
		}
	}))
	cancel()

	m4, err := New(g, ckConfig(true, 4))
	if err != nil {
		t.Fatal(err)
	}
	res := m4.RunContext(context.Background(), ResumeFrom(reloop(t, sink.Last())))
	if res.Reason != ReasonConverged && res.Reason != ReasonMaxIterations {
		t.Fatalf("cross-worker resume reason %v", res.Reason)
	}
}

func TestSolveColumnsKillAndResume(t *testing.T) {
	g := benchGraph(120)
	queries := []ColumnQuery{
		{Seeds: []int{0, 4, 8, 12}},
		{Seeds: []int{1, 5, 9}, ICA: true},
		{Seeds: []int{2, 6, 10, 14}},
	}
	for _, workers := range []int{1, 4} {
		label := fmt.Sprintf("workers=%d", workers)
		m, err := New(g, ckConfig(false, workers))
		if err != nil {
			t.Fatal(err)
		}
		ref, err := m.SolveColumns(context.Background(), queries)
		if err != nil {
			t.Fatal(err)
		}

		ctx, cancel := context.WithCancel(context.Background())
		sink := &MemorySink{}
		killed, err := m.SolveColumns(ctx, queries, WithCheckpoint(sink, 3),
			WithProgress(func(col, iter int, rho float64) {
				if iter >= 7 {
					cancel()
				}
			}))
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		for i := range killed {
			if killed[i].Stopped == nil && !killed[i].Converged {
				t.Fatalf("%s: column %d neither stopped nor converged", label, i)
			}
		}

		resumed, err := m.SolveColumns(context.Background(), queries, ResumeFrom(reloop(t, sink.Last())))
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if d := vec.Diff1(resumed[i].X, ref[i].X); d != 0 {
				t.Errorf("%s: column %d X diverged by %v", label, i, d)
			}
			if d := vec.Diff1(resumed[i].Z, ref[i].Z); d != 0 {
				t.Errorf("%s: column %d Z diverged by %v", label, i, d)
			}
			if resumed[i].Iterations != ref[i].Iterations {
				t.Errorf("%s: column %d iterations %d vs %d", label, i, resumed[i].Iterations, ref[i].Iterations)
			}
			if len(resumed[i].Trace) != len(ref[i].Trace) {
				t.Errorf("%s: column %d trace lengths %d vs %d", label, i, len(resumed[i].Trace), len(ref[i].Trace))
				continue
			}
			for k := range ref[i].Trace {
				if resumed[i].Trace[k] != ref[i].Trace[k] {
					t.Errorf("%s: column %d trace[%d] = %v vs %v", label, i, k, resumed[i].Trace[k], ref[i].Trace[k])
					break
				}
			}
		}
	}
}

func TestValidateCheckpointRejectsMismatches(t *testing.T) {
	g := benchGraph(100)
	m, err := New(g, ckConfig(true, 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sink := &MemorySink{}
	m.RunContext(ctx, WithCheckpoint(sink, 2), WithProgress(func(class, iter int, rho float64) {
		if iter >= 5 {
			cancel()
		}
	}))
	cancel()
	cp := sink.Last()
	if cp == nil {
		t.Fatal("no checkpoint saved")
	}
	if err := m.ValidateCheckpoint(cp); err != nil {
		t.Fatalf("own checkpoint rejected: %v", err)
	}

	// Different hyper-parameters: the config hash must not match.
	cfg2 := ckConfig(true, 1)
	cfg2.Alpha = 0.9
	m2, err := New(g, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.ValidateCheckpoint(cp); err == nil {
		t.Error("checkpoint with different Alpha accepted")
	}

	// Different graph: the dimensions must not match.
	m3, err := New(benchGraph(80), ckConfig(true, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m3.ValidateCheckpoint(cp); err == nil {
		t.Error("checkpoint for different graph accepted")
	}

	// Wrong kind for the API: a class checkpoint cannot resume columns.
	if _, err := m.SolveColumns(context.Background(),
		[]ColumnQuery{{Seeds: []int{0}}}, ResumeFrom(cp)); err == nil {
		t.Error("class checkpoint accepted by SolveColumns")
	}

	// And vice versa: a panic on RunContext, per the documented contract.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched checkpoint did not panic RunContext")
			}
		}()
		cp2 := *cp
		cp2.ConfigHash++
		m.RunContext(context.Background(), ResumeFrom(&cp2))
	}()
}

func TestDecodeCheckpointRejectsCorruption(t *testing.T) {
	m, err := New(benchGraph(80), ckConfig(true, 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sink := &MemorySink{}
	m.RunContext(ctx, WithCheckpoint(sink, 2), WithProgress(func(class, iter int, rho float64) {
		if iter >= 5 {
			cancel()
		}
	}))
	cancel()
	data := sink.Last().Encode()
	if _, err := DecodeCheckpoint(data); err != nil {
		t.Fatalf("clean checkpoint rejected: %v", err)
	}

	cases := map[string][]byte{
		"empty":     {},
		"truncated": data[:len(data)/2],
		"trailing":  append(append([]byte(nil), data...), 0),
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-1] ^= 0xff // checksum byte
	cases["bad-checksum"] = flipped
	wrongVersion := append([]byte(nil), data...)
	wrongVersion[7] = '2' // magic "TMARKCP2"
	cases["wrong-version"] = wrongVersion
	corruptBody := append([]byte(nil), data...)
	corruptBody[20] ^= 0xff // inside the dimension header
	cases["corrupt-body"] = corruptBody

	for name, bad := range cases {
		if _, err := DecodeCheckpoint(bad); err == nil {
			t.Errorf("%s: corrupted checkpoint decoded without error", name)
		}
	}
}

func TestConfigHashIgnoresWorkers(t *testing.T) {
	a := ckConfig(true, 1)
	b := ckConfig(true, 8)
	if a.checkpointHash() != b.checkpointHash() {
		t.Error("Workers changed the checkpoint config hash")
	}
	c := ckConfig(true, 1)
	c.Epsilon *= 2
	if a.checkpointHash() == c.checkpointHash() {
		t.Error("Epsilon did not change the checkpoint config hash")
	}
}

func TestGuardHelpers(t *testing.T) {
	g := DefaultGuards()
	if kind, bad := badMass(math.NaN(), false, nil); !bad || kind != faultNonFinite {
		t.Errorf("NaN mass: %q %v", kind, bad)
	}
	if kind, bad := badMass(1+2e-6, true, &g); !bad || kind != faultMassDrift {
		t.Errorf("drifted mass: %q %v", kind, bad)
	}
	if _, bad := badMass(1+2e-6, true, nil); bad {
		t.Error("mass drift flagged without guards")
	}
	if _, bad := badMass(1, true, &g); bad {
		t.Error("unit mass flagged")
	}
	if !stagnated([]float64{1, 0.5, 0.1001, 0.1002, 0.1001}, &GuardConfig{Stagnation: 3, StagnationTol: 1e-2}) {
		t.Error("flat tail not flagged as stagnated")
	}
	if stagnated([]float64{1, 0.5, 0.25, 0.12, 0.06}, &GuardConfig{Stagnation: 3, StagnationTol: 1e-2}) {
		t.Error("decaying tail flagged as stagnated")
	}
	if !diverged(2000, 1, &g) {
		t.Error("residual 2000x best not flagged as diverged")
	}
	if diverged(2, 1, &g) {
		t.Error("residual 2x best flagged as diverged")
	}
}

func FuzzDecodeCheckpoint(f *testing.F) {
	m, err := New(benchGraph(40), ckConfig(true, 1))
	if err != nil {
		f.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sink := &MemorySink{}
	m.RunContext(ctx, WithCheckpoint(sink, 1), WithProgress(func(class, iter int, rho float64) {
		if iter >= 3 {
			cancel()
		}
	}))
	cancel()
	data := sink.Last().Encode()

	f.Add(data)
	f.Add(data[:len(data)/2]) // truncated
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-3] ^= 0x40 // flipped checksum byte
	f.Add(flipped)
	wrongVersion := append([]byte(nil), data...)
	wrongVersion[7] = '9'
	f.Add(wrongVersion)
	f.Add([]byte{})
	f.Add([]byte("TMARKCP1"))

	f.Fuzz(func(t *testing.T, b []byte) {
		cp, err := DecodeCheckpoint(b) // must never panic
		if err != nil {
			return
		}
		// Anything that decodes must re-encode to a decodable checkpoint.
		if _, err := DecodeCheckpoint(cp.Encode()); err != nil {
			t.Fatalf("round-trip of accepted checkpoint failed: %v", err)
		}
	})
}
