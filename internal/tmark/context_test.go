package tmark

// Tests for the context-aware run API: cancellation and deadline
// semantics, the functional options, and the guarantee that telemetry
// collection never changes a numeric result.

import (
	"context"
	"errors"
	"testing"
	"time"

	"tmark/internal/obs"
)

// slowConfig makes convergence unreachable so a run is cut only by the
// context or the iteration cap.
func slowConfig(workers int) Config {
	cfg := DefaultConfig()
	cfg.Epsilon = 1e-300
	cfg.MaxIterations = 10000
	cfg.Workers = workers
	return cfg
}

func TestRunContextCancelStopsWithinOneIteration(t *testing.T) {
	for _, ica := range []bool{true, false} {
		g := benchGraph(120)
		cfg := slowConfig(1)
		cfg.ICAUpdate = ica
		m, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		const cancelAt = 3
		res := m.RunContext(ctx, WithProgress(func(class, iter int, rho float64) {
			if iter >= cancelAt {
				cancel()
			}
		}))
		if !errors.Is(res.Stopped, context.Canceled) {
			t.Fatalf("ica=%v: Stopped = %v, want context.Canceled", ica, res.Stopped)
		}
		if res.Reason != ReasonCanceled {
			t.Errorf("ica=%v: Reason = %v, want %v", ica, res.Reason, ReasonCanceled)
		}
		for _, cr := range res.Classes {
			// "Within one iteration": cancellation lands during iteration
			// cancelAt; no class may start iteration cancelAt+2.
			if cr.Iterations > cancelAt+1 {
				t.Errorf("ica=%v: class %d ran %d iterations after cancel at %d",
					ica, cr.Class, cr.Iterations, cancelAt)
			}
			if len(cr.X) != g.N() || len(cr.Z) != g.M() {
				t.Fatalf("ica=%v: class %d partial result has X/Z %d/%d", ica, cr.Class, len(cr.X), len(cr.Z))
			}
		}
		// The partial result must stay usable.
		if pred := res.Predict(); len(pred) != g.N() {
			t.Errorf("ica=%v: Predict on partial result returned %d predictions", ica, len(pred))
		}
	}
}

func TestRunContextSequentialCancelSkipsRemainingClasses(t *testing.T) {
	g := benchGraph(120)
	cfg := slowConfig(1)
	cfg.ICAUpdate = false // sequential per-class path
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// This test pins down the sequential path's class-skipping semantics;
	// the batched path advances all classes in lockstep instead.
	res := m.RunContext(ctx, WithBatchedClasses(false), WithProgress(func(class, iter int, rho float64) {
		if class == 1 && iter >= 2 {
			cancel()
		}
	}))
	if !errors.Is(res.Stopped, context.Canceled) {
		t.Fatalf("Stopped = %v", res.Stopped)
	}
	if got := res.Classes[1].Iterations; got > 3 {
		t.Errorf("class 1 ran %d iterations after cancel", got)
	}
	for c := 2; c < g.Q(); c++ {
		cr := res.Classes[c]
		if cr.Iterations != 0 {
			t.Errorf("unreached class %d ran %d iterations", c, cr.Iterations)
		}
		// Unreached classes hold their seed state so Predict still works.
		if len(cr.X) != g.N() || len(cr.Z) != g.M() {
			t.Errorf("unreached class %d missing seed state", c)
		}
	}
	if pred := res.Predict(); len(pred) != g.N() {
		t.Errorf("Predict on partial result returned %d predictions", len(pred))
	}
}

func TestRunContextExpiredDeadline(t *testing.T) {
	g := benchGraph(60)
	m, err := New(g, slowConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res := m.RunContext(ctx)
	if !errors.Is(res.Stopped, context.DeadlineExceeded) {
		t.Fatalf("Stopped = %v, want context.DeadlineExceeded", res.Stopped)
	}
	if res.Reason != ReasonDeadline {
		t.Errorf("Reason = %v, want %v", res.Reason, ReasonDeadline)
	}
	for _, cr := range res.Classes {
		if cr.Iterations != 0 {
			t.Errorf("class %d iterated under an expired deadline", cr.Class)
		}
	}
	if pred := res.Predict(); len(pred) != g.N() {
		t.Errorf("Predict returned %d predictions", len(pred))
	}
}

func TestRunContextDeadlineMidRun(t *testing.T) {
	g := benchGraph(200)
	m, err := New(g, slowConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res := m.RunContext(ctx)
	elapsed := time.Since(start)
	if !errors.Is(res.Stopped, context.DeadlineExceeded) {
		t.Fatalf("Stopped = %v, want context.DeadlineExceeded (elapsed %v)", res.Stopped, elapsed)
	}
	if res.Reason != ReasonDeadline {
		t.Errorf("Reason = %v", res.Reason)
	}
	// Bounded promptly: the per-iteration ctx check means the run ends a
	// single iteration after the deadline, not at MaxIterations. Allow a
	// generous margin for slow CI machines.
	if elapsed > 5*time.Second {
		t.Errorf("run took %v after a 30ms deadline", elapsed)
	}
}

func TestRunContextNaturalReasons(t *testing.T) {
	g := benchGraph(60)
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := m.RunContext(context.Background())
	if res.Stopped != nil || res.Reason != ReasonConverged {
		t.Errorf("converged run: Stopped=%v Reason=%v", res.Stopped, res.Reason)
	}

	cfg := slowConfig(1)
	cfg.MaxIterations = 3
	m2, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2 := m2.RunContext(nil) // nil ctx is background
	if res2.Stopped != nil || res2.Reason != ReasonMaxIterations {
		t.Errorf("capped run: Stopped=%v Reason=%v", res2.Stopped, res2.Reason)
	}
}

func TestWithStatsDoesNotChangePredictions(t *testing.T) {
	for _, workers := range []int{1, 3} {
		g := benchGraph(150)
		cfg := DefaultConfig()
		cfg.Workers = workers
		m, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		plain := m.Run()
		var st RunStats
		observed := m.RunContext(context.Background(), WithStats(&st))

		predA, predB := plain.Predict(), observed.Predict()
		for i := range predA {
			if predA[i] != predB[i] {
				t.Fatalf("workers=%d: prediction for node %d differs with stats: %d vs %d",
					workers, i, predA[i], predB[i])
			}
		}
		for c := range plain.Classes {
			ta, tb := plain.Classes[c].Trace, observed.Classes[c].Trace
			if len(ta) != len(tb) {
				t.Fatalf("workers=%d: class %d trace lengths differ: %d vs %d", workers, c, len(ta), len(tb))
			}
			for i := range ta {
				if ta[i] != tb[i] {
					t.Fatalf("workers=%d: class %d residual %d differs: %g vs %g", workers, c, i, ta[i], tb[i])
				}
			}
		}
	}
}

func TestWithStatsContents(t *testing.T) {
	g := benchGraph(150)
	cfg := DefaultConfig()
	cfg.Workers = 3
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var st RunStats
	res := m.RunContext(context.Background(), WithStats(&st))

	if st.Wall <= 0 {
		t.Errorf("Wall = %v", st.Wall)
	}
	if st.Workers != 3 {
		t.Errorf("Workers = %d", st.Workers)
	}
	wantIters := 0
	for _, cr := range res.Classes {
		wantIters += cr.Iterations
	}
	if st.Iterations != wantIters {
		t.Errorf("Iterations = %d, want %d", st.Iterations, wantIters)
	}
	if len(st.Classes) != g.Q() {
		t.Fatalf("Classes = %d, want %d", len(st.Classes), g.Q())
	}
	for c, cs := range st.Classes {
		if cs.Iterations != res.Classes[c].Iterations || cs.Converged != res.Classes[c].Converged {
			t.Errorf("class %d stats mismatch: %+v vs result %d/%v",
				c, cs, res.Classes[c].Iterations, res.Classes[c].Converged)
		}
		if len(cs.Residuals) != len(res.Classes[c].Trace) {
			t.Errorf("class %d residual trace %d, want %d", c, len(cs.Residuals), len(res.Classes[c].Trace))
		}
	}
	if len(st.Kernels) != int(obs.NumKernels) {
		t.Fatalf("Kernels = %d", len(st.Kernels))
	}
	for _, k := range []obs.Kernel{obs.KernelO, obs.KernelR, obs.KernelW} {
		ks := st.Kernels[k]
		if ks.Calls == 0 || ks.Time <= 0 || ks.Items == 0 {
			t.Errorf("kernel %s not observed: %+v", k, ks)
		}
	}
	// ICA is on and the run exceeds two iterations, so reseeds happened.
	if st.Kernels[obs.KernelReseed].Calls == 0 {
		t.Errorf("reseed kernel not observed: %+v", st.Kernels[obs.KernelReseed])
	}
	if st.PoolDispatches == 0 || st.PoolShards == 0 || st.PoolBusy <= 0 {
		t.Errorf("pool not observed: %d/%d/%v", st.PoolDispatches, st.PoolShards, st.PoolBusy)
	}
	// A reused RunStats is rewritten, not appended to.
	m.RunContext(context.Background(), WithStats(&st))
	if len(st.Classes) != g.Q() || len(st.Kernels) != int(obs.NumKernels) {
		t.Errorf("reused RunStats grew: %d classes, %d kernels", len(st.Classes), len(st.Kernels))
	}
}

func TestWithStatsSerialRun(t *testing.T) {
	g := benchGraph(80)
	cfg := DefaultConfig()
	cfg.Workers = 1
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var st RunStats
	m.RunContext(context.Background(), WithStats(&st))
	if st.Workers != 1 {
		t.Errorf("Workers = %d", st.Workers)
	}
	for _, k := range []obs.Kernel{obs.KernelO, obs.KernelR, obs.KernelW} {
		if st.Kernels[k].Calls == 0 || st.Kernels[k].Items == 0 {
			t.Errorf("serial kernel %s not observed: %+v", k, st.Kernels[k])
		}
	}
	if st.PoolDispatches != 0 {
		t.Errorf("serial run observed pool dispatches: %d", st.PoolDispatches)
	}
}

func TestWithWorkersOverridesConfig(t *testing.T) {
	g := benchGraph(150)
	cfg := DefaultConfig()
	cfg.Workers = 1
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var st RunStats
	res := m.RunContext(context.Background(), WithStats(&st), WithWorkers(4))
	if st.Workers != 4 {
		t.Errorf("Workers = %d, want 4 (override)", st.Workers)
	}
	if st.PoolDispatches == 0 {
		t.Errorf("override did not engage the pool")
	}
	// WithWorkers(0) keeps the configured value.
	var st2 RunStats
	m.RunContext(context.Background(), WithStats(&st2), WithWorkers(0))
	if st2.Workers != 1 {
		t.Errorf("WithWorkers(0) resolved to %d, want configured 1", st2.Workers)
	}
	if pred := res.Predict(); len(pred) != g.N() {
		t.Errorf("Predict len = %d", len(pred))
	}
}

func TestWithProgressReportsEveryIteration(t *testing.T) {
	g := benchGraph(80)
	cfg := DefaultConfig()
	cfg.Workers = 1
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lastIter := make(map[int]int)
	calls := 0
	res := m.RunContext(context.Background(), WithProgress(func(class, iter int, rho float64) {
		calls++
		if class < 0 || class >= g.Q() {
			t.Fatalf("progress class %d out of range", class)
		}
		if iter != lastIter[class]+1 {
			t.Fatalf("class %d iteration jumped %d -> %d", class, lastIter[class], iter)
		}
		lastIter[class] = iter
		if rho < 0 {
			t.Fatalf("negative residual %g", rho)
		}
	}))
	wantCalls := 0
	for _, cr := range res.Classes {
		wantCalls += cr.Iterations
		if lastIter[cr.Class] != cr.Iterations {
			t.Errorf("class %d: progress saw %d iterations, result says %d",
				cr.Class, lastIter[cr.Class], cr.Iterations)
		}
	}
	if calls != wantCalls {
		t.Errorf("progress calls = %d, want %d", calls, wantCalls)
	}
}

func TestRunWarmContextCancel(t *testing.T) {
	g := benchGraph(120)
	cfg := slowConfig(1)
	cfg.ICAUpdate = false
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A bounded cold run provides the warm start.
	coldCfg := cfg
	coldCfg.MaxIterations = 5
	mCold, err := New(g, coldCfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := mCold.Run()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res := m.RunWarmContext(ctx, prev, WithProgress(func(class, iter int, rho float64) {
		if iter >= 2 {
			cancel()
		}
	}))
	if !errors.Is(res.Stopped, context.Canceled) || res.Reason != ReasonCanceled {
		t.Fatalf("warm cancel: Stopped=%v Reason=%v", res.Stopped, res.Reason)
	}
	if pred := res.Predict(); len(pred) != g.N() {
		t.Errorf("Predict len = %d", len(pred))
	}
}

func TestRunPublishesRegistryAggregates(t *testing.T) {
	before := obs.Default().Counter("tmark_runs_total").Load()
	itersBefore := obs.Default().Counter("tmark_iterations_total").Load()
	g := benchGraph(60)
	m, err := New(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	if got := obs.Default().Counter("tmark_runs_total").Load(); got != before+1 {
		t.Errorf("tmark_runs_total %d -> %d, want +1", before, got)
	}
	if got := obs.Default().Counter("tmark_iterations_total").Load(); got <= itersBefore {
		t.Errorf("tmark_iterations_total did not grow: %d -> %d", itersBefore, got)
	}
}

func TestValidateRejectsNegativeWorkers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative Workers validated")
	}
}

func TestReasonStrings(t *testing.T) {
	for r, want := range map[Reason]string{
		ReasonUnknown:       "unknown",
		ReasonConverged:     "converged",
		ReasonMaxIterations: "max-iterations",
		ReasonCanceled:      "canceled",
		ReasonDeadline:      "deadline",
	} {
		if got := r.String(); got != want {
			t.Errorf("Reason(%d).String() = %q, want %q", r, got, want)
		}
	}
}
