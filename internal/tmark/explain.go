package tmark

import (
	"fmt"

	"tmark/internal/vec"
)

// Explanation decomposes one node's stationary score for one class into
// the three channels of eq. (10). At the fixed point
//
//	x̄[i] = (1−α−β)·[O x̄ z̄]_i + β·[W x̄]_i + α·l[i]
//
// so Relational + Feature + Restart reconstructs the score exactly (up to
// the convergence tolerance), which makes the decomposition a faithful
// answer to "why was this node scored this way".
type Explanation struct {
	Node, Class int
	// Score is the node's stationary probability x̄[i].
	Score float64
	// Relational is the mass arriving through the typed links (the tensor
	// channel, weight 1−α−β).
	Relational float64
	// Feature is the mass arriving through feature similarity (weight β).
	Feature float64
	// Restart is the seed mass (weight α); nonzero for labelled nodes and
	// ICA-accepted pseudo-seeds.
	Restart float64
	// Residual is Score − (Relational+Feature+Restart); near zero on a
	// converged solution.
	Residual float64
}

// String renders the decomposition compactly.
func (e Explanation) String() string {
	return fmt.Sprintf("node %d class %d: score=%.4f = relational %.4f + feature %.4f + restart %.4f (residual %.1e)",
		e.Node, e.Class, e.Score, e.Relational, e.Feature, e.Restart, e.Residual)
}

// Explain decomposes node i's score for the given class of a solved
// result. The result must come from this model (dimensions are checked;
// provenance is the caller's responsibility).
func (m *Model) Explain(res *Result, node, class int) Explanation {
	if node < 0 || node >= m.graph.N() {
		panic(fmt.Sprintf("tmark: Explain node %d out of range %d", node, m.graph.N()))
	}
	if class < 0 || class >= len(res.Classes) {
		panic(fmt.Sprintf("tmark: Explain class %d out of range %d", class, len(res.Classes)))
	}
	cr := &res.Classes[class]
	if len(cr.X) != m.graph.N() || len(cr.Z) != m.graph.M() {
		panic("tmark: Explain result does not match this model's dimensions")
	}
	alpha, beta := m.cfg.Alpha, m.cfg.Beta()
	rel := 1 - alpha - beta

	e := Explanation{Node: node, Class: class, Score: cr.X[node]}
	if rel > 0 {
		ox := vec.New(m.graph.N())
		m.o.Apply(cr.X, cr.Z, ox)
		e.Relational = rel * ox[node]
	}
	if beta > 0 && m.w != nil {
		wx := vec.New(m.graph.N())
		m.w.MulVec(cr.X, wx)
		e.Feature = beta * wx[node]
	}
	if len(cr.Restart) == len(cr.X) {
		e.Restart = alpha * cr.Restart[node]
	}
	e.Residual = e.Score - e.Relational - e.Feature - e.Restart
	return e
}

// ExplainAll decomposes every node's score for one class in a single pass
// (one O-apply and one W-apply instead of n of each).
func (m *Model) ExplainAll(res *Result, class int) []Explanation {
	if class < 0 || class >= len(res.Classes) {
		panic(fmt.Sprintf("tmark: ExplainAll class %d out of range %d", class, len(res.Classes)))
	}
	cr := &res.Classes[class]
	n := m.graph.N()
	alpha, beta := m.cfg.Alpha, m.cfg.Beta()
	rel := 1 - alpha - beta

	ox := vec.New(n)
	if rel > 0 {
		m.o.Apply(cr.X, cr.Z, ox)
	}
	wx := vec.New(n)
	if beta > 0 && m.w != nil {
		m.w.MulVec(cr.X, wx)
	}
	out := make([]Explanation, n)
	for i := 0; i < n; i++ {
		e := Explanation{Node: i, Class: class, Score: cr.X[i],
			Relational: rel * ox[i], Feature: beta * wx[i]}
		if len(cr.Restart) == n {
			e.Restart = alpha * cr.Restart[i]
		}
		e.Residual = e.Score - e.Relational - e.Feature - e.Restart
		out[i] = e
	}
	return out
}
