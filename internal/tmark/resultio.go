package tmark

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// jsonResult is the on-disk shape of a solved Result; it exists so the
// incremental workflow (solve, persist, later RunWarm from the loaded
// solution) works across process restarts.
type jsonResult struct {
	Version int               `json:"version"`
	N       int               `json:"n"`
	M       int               `json:"m"`
	Q       int               `json:"q"`
	Classes []jsonClassResult `json:"classes"`
}

type jsonClassResult struct {
	Class      int       `json:"class"`
	X          []float64 `json:"x"`
	Z          []float64 `json:"z"`
	Restart    []float64 `json:"restart,omitempty"`
	Iterations int       `json:"iterations"`
	Converged  bool      `json:"converged"`
	Seeds      int       `json:"seeds"`
}

const resultCodecVersion = 1

// WriteJSON persists the result (stationary vectors, restart sets and
// convergence metadata; traces are not persisted).
func (r *Result) WriteJSON(w io.Writer) error {
	jr := jsonResult{Version: resultCodecVersion, N: r.n, M: r.m, Q: r.q}
	for c := range r.Classes {
		cr := &r.Classes[c]
		jr.Classes = append(jr.Classes, jsonClassResult{
			Class: cr.Class, X: cr.X, Z: cr.Z, Restart: cr.Restart,
			Iterations: cr.Iterations, Converged: cr.Converged, Seeds: cr.Seeds,
		})
	}
	return json.NewEncoder(w).Encode(jr)
}

// ReadResultJSON loads a result written by WriteJSON and checks its
// internal consistency.
func ReadResultJSON(rd io.Reader) (*Result, error) {
	var jr jsonResult
	if err := json.NewDecoder(rd).Decode(&jr); err != nil {
		return nil, fmt.Errorf("tmark: decode result: %w", err)
	}
	if jr.Version != resultCodecVersion {
		return nil, fmt.Errorf("tmark: unsupported result version %d", jr.Version)
	}
	if jr.N < 0 || jr.M < 0 || jr.Q < 0 || len(jr.Classes) != jr.Q {
		return nil, fmt.Errorf("tmark: result shape inconsistent: n=%d m=%d q=%d classes=%d",
			jr.N, jr.M, jr.Q, len(jr.Classes))
	}
	res := &Result{n: jr.N, m: jr.M, q: jr.Q}
	for _, jc := range jr.Classes {
		if len(jc.X) != jr.N || len(jc.Z) != jr.M {
			return nil, fmt.Errorf("tmark: class %d vectors sized %d/%d, want %d/%d",
				jc.Class, len(jc.X), len(jc.Z), jr.N, jr.M)
		}
		if jc.Restart != nil && len(jc.Restart) != jr.N {
			return nil, fmt.Errorf("tmark: class %d restart sized %d, want %d", jc.Class, len(jc.Restart), jr.N)
		}
		res.Classes = append(res.Classes, ClassResult{
			Class: jc.Class, X: jc.X, Z: jc.Z, Restart: jc.Restart,
			Iterations: jc.Iterations, Converged: jc.Converged, Seeds: jc.Seeds,
		})
	}
	return res, nil
}

// SaveFile writes the result to path as JSON.
func (r *Result) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadResultFile reads a result saved with SaveFile.
func LoadResultFile(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadResultJSON(f)
}
