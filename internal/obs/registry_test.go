package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total").Add(3)
	r.Timer("solve").Observe(1500 * time.Millisecond)
	r.SetGauge("workers", func() float64 { return 4 })

	snap := r.Snapshot()
	if snap["runs_total"] != int64(3) {
		t.Errorf("runs_total = %v", snap["runs_total"])
	}
	if snap["solve_seconds_total"] != 1.5 {
		t.Errorf("solve_seconds_total = %v", snap["solve_seconds_total"])
	}
	if snap["solve_calls_total"] != int64(1) {
		t.Errorf("solve_calls_total = %v", snap["solve_calls_total"])
	}
	if snap["workers"] != 4.0 {
		t.Errorf("workers = %v", snap["workers"])
	}
	// Same name returns the same instrument.
	if r.Counter("runs_total").Load() != 3 {
		t.Errorf("counter identity lost")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(7)
	r.Counter("a_total").Inc()
	r.Timer("kernel").Observe(2 * time.Second)
	r.SetGauge("depth", func() float64 { return 0.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE a_total counter\na_total 1\n",
		"# TYPE b_total counter\nb_total 7\n",
		"# TYPE kernel_seconds_total counter\nkernel_seconds_total 2\n",
		"# TYPE kernel_calls_total counter\nkernel_calls_total 1\n",
		"# TYPE depth gauge\ndepth 0.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Sorted: a_total before b_total before depth before kernel_*.
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Errorf("output not sorted:\n%s", out)
	}
}

func TestSanitize(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"good_name", "good_name"},
		{"has space", "has_space"},
		{"kernel/o", "kernel_o"},
		{"9lives", "_9lives"},
		{"", "_"},
	} {
		if got := sanitize(tc.in); got != tc.want {
			t.Errorf("sanitize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("tmark_runs_total").Add(2)
	addr, shutdown, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = shutdown(ctx)
	}()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "tmark_runs_total 2") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	code, body = get("/vars")
	if code != http.StatusOK {
		t.Fatalf("/vars = %d", code)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/vars not JSON: %v", err)
	}
	if snap["tmark_runs_total"] != 2.0 { // JSON numbers decode as float64
		t.Errorf("/vars tmark_runs_total = %v", snap["tmark_runs_total"])
	}
	code, body = get("/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestDefaultRegistryIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() not a singleton")
	}
	Default().Counter("obs_test_probe_total").Inc()
	if Default().Counter("obs_test_probe_total").Load() < 1 {
		t.Fatal("default registry lost a counter")
	}
}
