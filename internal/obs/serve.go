package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler serving the registry in the Prometheus
// text exposition format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler returns an http.Handler serving the expvar-style Snapshot
// as a JSON document — mount it at /vars.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// NewMux returns a mux exposing the registry at /metrics (Prometheus
// text) and /vars (JSON snapshot), plus the net/http/pprof profiling
// endpoints under /debug/pprof/. It deliberately avoids the package-level
// http.DefaultServeMux so importing obs never changes global handlers.
func (r *Registry) NewMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/vars", r.JSONHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an HTTP server for NewMux on addr (":0" binds an ephemeral
// port) and returns the bound address plus a shutdown function. The
// server runs until the shutdown function is called; serve errors after
// shutdown are discarded.
func (r *Registry) Serve(addr string) (net.Addr, func(context.Context) error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: r.NewMux(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), srv.Shutdown, nil
}
