package obs

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyNilSafe(t *testing.T) {
	var l *Latency
	l.Observe(time.Second)
	if l.Quantile(0.5) != 0 || l.Count() != 0 {
		t.Fatalf("nil Latency should read as zero")
	}
}

func TestLatencyEmpty(t *testing.T) {
	l := NewLatency(8)
	if got := l.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
}

func TestLatencyQuantiles(t *testing.T) {
	l := NewLatency(100)
	for i := 1; i <= 100; i++ {
		l.Observe(time.Duration(i) * time.Millisecond)
	}
	cases := []struct {
		p    float64
		want float64 // seconds
	}{
		{0, 0.001},
		{0.5, 0.051},
		{0.99, 0.100},
		{1, 0.100},
	}
	for _, c := range cases {
		if got := l.Quantile(c.p); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if l.Count() != 100 {
		t.Errorf("Count = %d, want 100", l.Count())
	}
}

// TestLatencyWindowRotation: old observations fall out of the window,
// so the quantiles track only the recent past.
func TestLatencyWindowRotation(t *testing.T) {
	l := NewLatency(10)
	for i := 0; i < 10; i++ {
		l.Observe(time.Hour) // ancient, slow
	}
	for i := 0; i < 10; i++ {
		l.Observe(time.Millisecond) // recent, fast
	}
	if got := l.Quantile(0.99); got != 0.001 {
		t.Fatalf("p99 after rotation = %v, want 0.001", got)
	}
	if l.Count() != 20 {
		t.Fatalf("Count = %d, want 20", l.Count())
	}
}

func TestLatencyDefaultWindow(t *testing.T) {
	l := NewLatency(0)
	l.Observe(time.Second)
	if got := l.Quantile(0.5); got != 1 {
		t.Fatalf("Quantile = %v, want 1", got)
	}
}

// TestLatencyConcurrent exercises Observe/Quantile under the race
// detector.
func TestLatencyConcurrent(t *testing.T) {
	l := NewLatency(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Observe(time.Duration(i) * time.Microsecond)
				_ = l.Quantile(0.5)
			}
		}()
	}
	wg.Wait()
	if l.Count() != 1600 {
		t.Fatalf("Count = %d, want 1600", l.Count())
	}
}
