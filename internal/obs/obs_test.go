package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndTimerNilSafety(t *testing.T) {
	var nilC *Counter
	nilC.Inc()
	nilC.Add(5)
	if nilC.Load() != 0 {
		t.Errorf("nil counter Load = %d", nilC.Load())
	}
	var nilT *Timer
	nilT.Observe(time.Second)
	nilT.ObserveSince(time.Now())
	if nilT.Total() != 0 || nilT.Count() != 0 {
		t.Errorf("nil timer observed something")
	}
	var nilP *Probe
	nilP.Observe(10)
	if nilP.Calls() != 0 || nilP.Items() != 0 {
		t.Errorf("nil probe observed something")
	}
	var nilS *PoolStats
	nilS.Dispatch()
	nilS.ObserveShard(3, time.Second)
	if nilS.Dispatches() != 0 || nilS.ShardsRun() != 0 || nilS.Busy() != 0 {
		t.Errorf("nil pool stats observed something")
	}
	var nilSC *ShardedCounter
	nilSC.Add(0, 1)
	if nilSC.Load() != 0 || nilSC.Shards() != 0 {
		t.Errorf("nil sharded counter observed something")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Load())
	}
}

func TestShardedCounter(t *testing.T) {
	c := NewShardedCounter(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Add(w, 2) // worker ids beyond the shard count wrap around
			}
		}(w)
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Errorf("sharded counter = %d, want 8000", c.Load())
	}
	if c.Shards() != 4 {
		t.Errorf("shards = %d", c.Shards())
	}
	c.Add(-3, 1) // negative ids must not panic
	if c.Load() != 8001 {
		t.Errorf("after negative-shard add: %d", c.Load())
	}
}

func TestTimer(t *testing.T) {
	var tm Timer
	tm.Observe(2 * time.Millisecond)
	tm.Observe(3 * time.Millisecond)
	if tm.Total() != 5*time.Millisecond || tm.Count() != 2 {
		t.Errorf("timer total=%v count=%d", tm.Total(), tm.Count())
	}
	// ObserveSince with a zero start (the nil-collector clock) is ignored.
	tm.ObserveSince(time.Time{})
	if tm.Count() != 2 {
		t.Errorf("zero start observed")
	}
}

func TestCollectorDisabled(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector enabled")
	}
	start := c.Clock()
	if !start.IsZero() {
		t.Errorf("nil collector clock = %v", start)
	}
	c.StopKernel(KernelO, start)
	c.AddKernelItems(KernelR, 5)
	if p := c.KernelProbe(KernelW); p != nil {
		t.Errorf("nil collector returned a probe")
	}
	if ps := c.AttachPool(4); ps != nil {
		t.Errorf("nil collector returned pool stats")
	}
	c.Finish(&RunStats{}) // no-op
}

func TestCollectorRecordsKernels(t *testing.T) {
	c := NewCollector()
	start := c.Clock()
	time.Sleep(time.Millisecond)
	c.StopKernel(KernelO, start)
	c.AddKernelItems(KernelO, 100)
	c.KernelProbe(KernelW).Observe(40)
	ps := c.AttachPool(2)
	ps.Dispatch()
	ps.ObserveShard(0, time.Millisecond)
	ps.ObserveShard(1, time.Millisecond)

	var rs RunStats
	c.Finish(&rs)
	if rs.Wall <= 0 {
		t.Errorf("wall = %v", rs.Wall)
	}
	if len(rs.Kernels) != int(NumKernels) {
		t.Fatalf("kernels = %d, want %d", len(rs.Kernels), NumKernels)
	}
	if rs.KernelTime(KernelO) < time.Millisecond {
		t.Errorf("KernelO time = %v", rs.KernelTime(KernelO))
	}
	if rs.Kernels[KernelO].Calls != 1 || rs.Kernels[KernelO].Items != 100 {
		t.Errorf("KernelO calls/items = %d/%d", rs.Kernels[KernelO].Calls, rs.Kernels[KernelO].Items)
	}
	if rs.Kernels[KernelW].Items != 40 {
		t.Errorf("KernelW items = %d", rs.Kernels[KernelW].Items)
	}
	if rs.PoolDispatches != 1 || rs.PoolShards != 2 || rs.PoolBusy != 2*time.Millisecond {
		t.Errorf("pool = %d/%d/%v", rs.PoolDispatches, rs.PoolShards, rs.PoolBusy)
	}
	out := rs.String()
	for _, want := range []string{"o_contract", "w_matvec", "pool:", "alloc:"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestKernelNames(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Kernels() {
		name := k.String()
		if name == "" || seen[name] {
			t.Errorf("kernel %d has bad/duplicate name %q", k, name)
		}
		seen[name] = true
	}
	if got := Kernel(200).String(); got != "kernel_200" {
		t.Errorf("out-of-range kernel name = %q", got)
	}
}
