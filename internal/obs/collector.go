package obs

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Kernel identifies one of the solver's per-iteration compute kernels.
type Kernel uint8

const (
	// KernelO is the node-transition contraction x' = O ×̄₁ x ×̄₃ z.
	KernelO Kernel = iota
	// KernelR is the relation-transition contraction z' = R ×̄₁ x ×̄₂ x.
	KernelR
	// KernelW is the feature-channel matrix-vector product W·x.
	KernelW
	// KernelReseed is the ICA pseudo-seed update of the restart vectors.
	KernelReseed
	// NumKernels is the kernel count; valid kernels are [0, NumKernels).
	NumKernels
)

var kernelNames = [NumKernels]string{"o_contract", "r_contract", "w_matvec", "ica_reseed"}

// String returns the kernel's snake_case metric name.
func (k Kernel) String() string {
	if k < NumKernels {
		return kernelNames[k]
	}
	return fmt.Sprintf("kernel_%d", uint8(k))
}

// Kernels lists the valid kernels in order.
func Kernels() []Kernel {
	ks := make([]Kernel, NumKernels)
	for i := range ks {
		ks[i] = Kernel(i)
	}
	return ks
}

// kernelAgg accumulates one kernel's run-local telemetry. The duration
// and call count are recorded by the driver goroutine around each kernel
// invocation; the probe accumulates item counts (fed either by the
// driver or by the kernel's own scratch object). Everything is atomic so
// concurrent runs sharing nothing but the clock stay race-free.
type kernelAgg struct {
	ns    Counter
	calls Counter
	probe Probe
}

// Collector gathers the telemetry of one solver run: per-kernel wall time
// and item counts, worker-pool activity, and the allocation delta. A nil
// *Collector is the disabled collector — every method nil-checks and
// returns immediately, so instrumented code calls it unconditionally.
//
// A Collector belongs to one run; build a fresh one per run and Finish it
// into a RunStats when the run completes.
type Collector struct {
	start   time.Time
	kernels [NumKernels]kernelAgg
	pool    *PoolStats

	mallocs0, bytes0 uint64
}

// NewCollector starts a collector: records the start time and the
// process allocation baseline.
func NewCollector() *Collector {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &Collector{start: time.Now(), mallocs0: ms.Mallocs, bytes0: ms.TotalAlloc}
}

// Enabled reports whether the collector actually records (non-nil).
func (c *Collector) Enabled() bool { return c != nil }

// Clock returns the current time, or the zero time on a nil collector so
// the matching StopKernel is a no-op without a second branch at the call
// site.
func (c *Collector) Clock() time.Time {
	if c == nil {
		return time.Time{}
	}
	return time.Now()
}

// StopKernel adds the time elapsed since start to kernel k. A nil
// collector or a zero start (from a nil Clock) is a no-op.
func (c *Collector) StopKernel(k Kernel, start time.Time) {
	if c == nil || start.IsZero() || k >= NumKernels {
		return
	}
	c.kernels[k].ns.Add(int64(time.Since(start)))
	c.kernels[k].calls.Inc()
}

// AddKernelItems credits n processed items and one applied column to
// kernel k; no-op when nil.
func (c *Collector) AddKernelItems(k Kernel, n int64) {
	if c == nil || k >= NumKernels {
		return
	}
	c.kernels[k].probe.items.Add(n)
	c.kernels[k].probe.cols.Add(1)
}

// AddKernelCols credits n processed items applied across cols class
// columns to kernel k — the batched-kernel variant of AddKernelItems,
// where one streamed pass over the items serves cols right-hand sides.
// No-op when nil.
func (c *Collector) AddKernelCols(k Kernel, n, cols int64) {
	if c == nil || k >= NumKernels {
		return
	}
	c.kernels[k].probe.items.Add(n)
	c.kernels[k].probe.cols.Add(cols)
}

// KernelProbe returns the item/call probe of kernel k, for attaching to a
// compute kernel's scratch object. A nil collector returns a nil probe,
// which the kernels accept as "observation off".
func (c *Collector) KernelProbe(k Kernel) *Probe {
	if c == nil || k >= NumKernels {
		return nil
	}
	return &c.kernels[k].probe
}

// AttachPool creates, stores and returns PoolStats for a pool of the
// given worker count. A nil collector returns nil, which par accepts as
// "observation off".
func (c *Collector) AttachPool(workers int) *PoolStats {
	if c == nil {
		return nil
	}
	c.pool = NewPoolStats(workers)
	return c.pool
}

// Finish closes the collection window and writes the collector's view
// (wall time, kernel split, pool activity, allocation delta) into s. The
// caller fills the solver-level fields (Workers, Iterations, Classes).
// No-op when the collector or s is nil.
func (c *Collector) Finish(s *RunStats) {
	if c == nil || s == nil {
		return
	}
	s.Wall = time.Since(c.start)
	s.Kernels = s.Kernels[:0]
	for k := Kernel(0); k < NumKernels; k++ {
		agg := &c.kernels[k]
		s.Kernels = append(s.Kernels, KernelStats{
			Kernel: k,
			Name:   k.String(),
			Time:   time.Duration(agg.ns.Load()),
			Calls:  agg.calls.Load(),
			Items:  agg.probe.Items(),
			Cols:   agg.probe.Cols(),
		})
	}
	s.PoolDispatches = c.pool.Dispatches()
	s.PoolShards = c.pool.ShardsRun()
	s.PoolBusy = c.pool.Busy()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.Allocs = ms.Mallocs - c.mallocs0
	s.AllocBytes = ms.TotalAlloc - c.bytes0
}

// KernelStats is the per-kernel slice of a run's wall time.
type KernelStats struct {
	Kernel Kernel
	// Name is the kernel's metric name (o_contract, r_contract, w_matvec,
	// ica_reseed).
	Name string
	// Time is the wall time spent inside the kernel, measured around each
	// call from the driver goroutine.
	Time time.Duration
	// Calls is the number of kernel invocations.
	Calls int64
	// Items is the number of stored entries (tensor nonzeros, CSR entries,
	// dense cells, …) the kernel processed across all calls.
	Items int64
	// Cols is the number of right-hand-side columns the kernel applied
	// across all calls: one per call for the single-vector kernels, the
	// active class count per call for the batched kernels. Items measures
	// memory traffic; Items scaled by Cols/Calls approximates arithmetic.
	Cols int64
}

// ClassStats summarises one class's iteration history within a run.
type ClassStats struct {
	Class      int
	Iterations int
	Converged  bool
	// FinalResidual is the last ρ_t observed (0 when no iteration ran).
	FinalResidual float64
	// Residuals is the per-iteration ρ_t trace.
	Residuals []float64
}

// RunStats is the telemetry record of one solver run, filled in place by
// the solver when the caller passes it via WithStats. A RunStats may be
// reused across runs; every slice is truncated and rewritten.
type RunStats struct {
	// Wall is the end-to-end run duration.
	Wall time.Duration
	// Workers is the resolved worker count the run used.
	Workers int
	// Iterations is the total iteration count summed over classes.
	Iterations int
	// Classes holds the per-class iteration counts and residual traces.
	Classes []ClassStats
	// Kernels splits the wall time across the compute kernels, in Kernel
	// order.
	Kernels []KernelStats
	// PoolDispatches, PoolShards and PoolBusy describe worker-pool
	// activity: batch submissions, shard executions, and summed per-worker
	// busy time (which exceeds wall time when workers overlap).
	PoolDispatches int64
	PoolShards     int64
	PoolBusy       time.Duration
	// Allocs and AllocBytes are the process-wide heap allocation deltas
	// over the run window — an approximation when other goroutines
	// allocate concurrently.
	Allocs     uint64
	AllocBytes uint64
	// AccelProposed, AccelAccepted and AccelRejected count the
	// extrapolated power method's candidate iterates over the run: built,
	// passed the monotone-residual vet, and discarded (all zero when the
	// run did not use WithAcceleration).
	AccelProposed int64
	AccelAccepted int64
	AccelRejected int64
}

// KernelTime returns the recorded time of kernel k (0 when absent).
func (s *RunStats) KernelTime(k Kernel) time.Duration {
	if s == nil {
		return 0
	}
	for i := range s.Kernels {
		if s.Kernels[i].Kernel == k {
			return s.Kernels[i].Time
		}
	}
	return 0
}

// String renders the per-kernel and per-class breakdown as a small text
// report (what `tmark -stats` prints).
func (s *RunStats) String() string {
	if s == nil {
		return "no stats collected"
	}
	var b strings.Builder
	converged := 0
	for _, cs := range s.Classes {
		if cs.Converged {
			converged++
		}
	}
	fmt.Fprintf(&b, "run: wall %v, %d workers, %d iterations over %d classes (%d converged)\n",
		s.Wall.Round(time.Microsecond), s.Workers, s.Iterations, len(s.Classes), converged)
	fmt.Fprintf(&b, "%-12s %12s %7s %8s %14s %8s\n", "kernel", "time", "%", "calls", "items", "cols")
	kernels := append([]KernelStats(nil), s.Kernels...)
	sort.SliceStable(kernels, func(i, j int) bool { return kernels[i].Time > kernels[j].Time })
	for _, ks := range kernels {
		pct := 0.0
		if s.Wall > 0 {
			pct = 100 * float64(ks.Time) / float64(s.Wall)
		}
		fmt.Fprintf(&b, "%-12s %12v %6.1f%% %8d %14d %8d\n",
			ks.Name, ks.Time.Round(time.Microsecond), pct, ks.Calls, ks.Items, ks.Cols)
	}
	if s.PoolDispatches > 0 {
		util := 0.0
		if s.Wall > 0 {
			util = float64(s.PoolBusy) / float64(s.Wall)
		}
		fmt.Fprintf(&b, "pool: %d dispatches, %d shards, busy %v (parallelism %.2fx)\n",
			s.PoolDispatches, s.PoolShards, s.PoolBusy.Round(time.Microsecond), util)
	}
	fmt.Fprintf(&b, "alloc: %d objects, %d bytes\n", s.Allocs, s.AllocBytes)
	if s.AccelProposed > 0 {
		fmt.Fprintf(&b, "accel: %d proposed, %d accepted, %d rejected\n",
			s.AccelProposed, s.AccelAccepted, s.AccelRejected)
	}
	for _, cs := range s.Classes {
		fmt.Fprintf(&b, "class %d: %d iterations, converged=%v, final rho %.3g\n",
			cs.Class, cs.Iterations, cs.Converged, cs.FinalResidual)
	}
	return b.String()
}
