package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry is a process-wide set of named metrics: monotonic counters,
// duration timers, and read-on-demand gauges. Metrics are created on
// first use and live for the process; a Registry is safe for concurrent
// use, and the instruments it hands out are updated lock-free.
//
// The registry exposes itself two ways: Snapshot returns an expvar-style
// name→value map, and WritePrometheus emits the Prometheus text format
// (timers expand into <name>_seconds_total and <name>_calls_total pairs).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	timers   map[string]*Timer
	gauges   map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		timers:   map[string]*Timer{},
		gauges:   map[string]func() float64{},
	}
}

// std is the process-wide default registry the solver publishes into and
// the -metrics-addr endpoint serves.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	name = sanitize(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	name = sanitize(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// SetGauge registers (or replaces) a gauge evaluated at read time.
func (r *Registry) SetGauge(name string, fn func() float64) {
	name = sanitize(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// Snapshot returns an expvar-style map of every metric: counters as
// int64, gauges as float64, and timers as a <name>_seconds_total float
// plus a <name>_calls_total int64.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+2*len(r.timers)+len(r.gauges))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	for name, t := range r.timers {
		out[name+"_seconds_total"] = t.Total().Seconds()
		out[name+"_calls_total"] = t.Count()
	}
	for name, fn := range r.gauges {
		out[name] = fn()
	}
	return out
}

// WritePrometheus emits the registry in the Prometheus text exposition
// format (version 0.0.4), metric names sorted for stable output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type sample struct {
		name  string
		typ   string
		value string
	}
	r.mu.Lock()
	samples := make([]sample, 0, len(r.counters)+2*len(r.timers)+len(r.gauges))
	for name, c := range r.counters {
		samples = append(samples, sample{name, "counter", fmt.Sprintf("%d", c.Load())})
	}
	for name, t := range r.timers {
		samples = append(samples,
			sample{name + "_seconds_total", "counter", formatFloat(t.Total().Seconds())},
			sample{name + "_calls_total", "counter", fmt.Sprintf("%d", t.Count())})
	}
	for name, fn := range r.gauges {
		samples = append(samples, sample{name, "gauge", formatFloat(fn())})
	}
	r.mu.Unlock()
	sort.Slice(samples, func(i, j int) bool { return samples[i].name < samples[j].name })
	for _, s := range samples {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n", s.name, s.typ, s.name, s.value); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}

// sanitize maps an arbitrary string onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], with a leading underscore when the first rune
// would be a digit.
func sanitize(name string) string {
	ok := true
	for i := 0; i < len(name); i++ {
		if !validMetricByte(name[i], i == 0) {
			ok = false
			break
		}
	}
	if ok && name != "" {
		return name
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		if validMetricByte(name[i], false) {
			b.WriteByte(name[i])
		} else {
			b.WriteByte('_')
		}
	}
	s := b.String()
	if s == "" {
		return "_"
	}
	if s[0] >= '0' && s[0] <= '9' {
		s = "_" + s
	}
	return s
}

func validMetricByte(b byte, first bool) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_', b == ':':
		return true
	case b >= '0' && b <= '9':
		return !first
	}
	return false
}
