// Package obs is the observability layer of the solver: low-overhead
// counters and timers for the hot loops, a per-run telemetry record
// (RunStats, filled by a Collector), and a process-wide metrics Registry
// with an expvar-style snapshot and Prometheus text exposition.
//
// The package has two design rules. First, zero dependencies: only the
// standard library, so every compute package can import it freely.
// Second, disabled must cost nothing measurable: every instrument is
// usable through a nil pointer — a nil *Collector, *Probe, *PoolStats,
// *Counter or *Timer turns every method into a nil-checked no-op — so
// the hot paths thread telemetry unconditionally and pay a branch, not
// an atomic, when observation is off.
//
// Contention is handled by sharding: instruments updated concurrently by
// pool workers (PoolStats, ShardedCounter) keep one cache-line-padded
// slot per worker and sum on read, so the per-shard add never bounces a
// cache line between cores.
package obs

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonic atomic counter. The zero value is ready to use;
// a nil *Counter is a valid disabled counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Calls on a nil counter are no-ops.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current value; 0 on a nil counter.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Timer accumulates observed durations and their count. The zero value is
// ready to use; a nil *Timer is a valid disabled timer.
type Timer struct {
	ns    atomic.Int64
	calls atomic.Int64
}

// Observe records one duration. Calls on a nil timer are no-ops.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.ns.Add(int64(d))
	t.calls.Add(1)
}

// ObserveSince records the duration elapsed since start. A zero start (as
// returned by a nil Collector's Clock) is ignored.
func (t *Timer) ObserveSince(start time.Time) {
	if t == nil || start.IsZero() {
		return
	}
	t.Observe(time.Since(start))
}

// Total returns the accumulated duration; 0 on a nil timer.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Count returns the number of observations; 0 on a nil timer.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.calls.Load()
}

// paddedInt is an atomic counter padded to a cache line so adjacent
// shards never share one (64-byte lines on every target we build for).
type paddedInt struct {
	v atomic.Int64
	_ [56]byte
}

// ShardedCounter is a counter split across per-worker slots to avoid
// cross-core contention on concurrent adds. Reads sum the slots. A nil
// *ShardedCounter is a valid disabled counter.
type ShardedCounter struct {
	shards []paddedInt
}

// NewShardedCounter returns a counter with the given number of slots;
// shards < 1 is treated as 1.
func NewShardedCounter(shards int) *ShardedCounter {
	if shards < 1 {
		shards = 1
	}
	return &ShardedCounter{shards: make([]paddedInt, shards)}
}

// Add adds n to the slot of the given shard (taken modulo the slot
// count, so any worker index is safe). No-op on a nil counter.
func (c *ShardedCounter) Add(shard int, n int64) {
	if c == nil {
		return
	}
	if shard < 0 {
		shard = -shard
	}
	c.shards[shard%len(c.shards)].v.Add(n)
}

// Load sums the slots; 0 on a nil counter.
func (c *ShardedCounter) Load() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Shards returns the slot count; 0 on a nil counter.
func (c *ShardedCounter) Shards() int {
	if c == nil {
		return 0
	}
	return len(c.shards)
}

// Probe counts one kernel call site: invocations, items (stored
// entries, rows, …) processed, and right-hand-side columns applied.
// Compute kernels carry an optional *Probe on their scratch objects and
// call Observe unconditionally; a nil probe — the default — reduces the
// call to a branch. The column dimension separates the batched
// (multi-class) kernels from the single-vector ones: a batched call
// streams its items once but applies them to `cols` class columns, so
// items measures memory traffic and cols·items measures arithmetic.
type Probe struct {
	calls atomic.Int64
	items atomic.Int64
	cols  atomic.Int64
}

// Observe records one single-column kernel call over n items. No-op on a
// nil probe.
func (p *Probe) Observe(n int) { p.ObserveCols(n, 1) }

// ObserveCols records one kernel call that streamed n items across cols
// right-hand-side columns. No-op on a nil probe.
func (p *Probe) ObserveCols(n, cols int) {
	if p == nil {
		return
	}
	p.calls.Add(1)
	p.items.Add(int64(n))
	p.cols.Add(int64(cols))
}

// Calls returns the recorded invocation count; 0 on a nil probe.
func (p *Probe) Calls() int64 {
	if p == nil {
		return 0
	}
	return p.calls.Load()
}

// Items returns the recorded item total; 0 on a nil probe.
func (p *Probe) Items() int64 {
	if p == nil {
		return 0
	}
	return p.items.Load()
}

// Cols returns the recorded column total; 0 on a nil probe.
func (p *Probe) Cols() int64 {
	if p == nil {
		return 0
	}
	return p.cols.Load()
}

// PoolStats observes a worker pool: dispatches (batch submissions), shard
// executions, and per-worker busy time. The per-worker series are sharded
// so concurrent workers never contend on one cache line. A nil *PoolStats
// disables observation.
type PoolStats struct {
	dispatches Counter
	shardsRun  *ShardedCounter
	busyNS     *ShardedCounter
}

// NewPoolStats returns stats sized for the given worker count.
func NewPoolStats(workers int) *PoolStats {
	if workers < 1 {
		workers = 1
	}
	return &PoolStats{
		shardsRun: NewShardedCounter(workers),
		busyNS:    NewShardedCounter(workers),
	}
}

// Dispatch records one batch submission. No-op on a nil receiver.
func (s *PoolStats) Dispatch() {
	if s == nil {
		return
	}
	s.dispatches.Inc()
}

// ObserveShard records one shard executed by the given worker for d.
// No-op on a nil receiver.
func (s *PoolStats) ObserveShard(worker int, d time.Duration) {
	if s == nil {
		return
	}
	s.shardsRun.Add(worker, 1)
	s.busyNS.Add(worker, int64(d))
}

// Dispatches returns the batch submissions observed; 0 on nil.
func (s *PoolStats) Dispatches() int64 {
	if s == nil {
		return 0
	}
	return s.dispatches.Load()
}

// ShardsRun returns the shard executions observed; 0 on nil.
func (s *PoolStats) ShardsRun() int64 {
	if s == nil {
		return 0
	}
	return s.shardsRun.Load()
}

// Busy returns the summed worker busy time; 0 on nil. Busy time counts
// every worker in parallel, so it can exceed wall time — the ratio is the
// effective parallelism.
func (s *PoolStats) Busy() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.busyNS.Load())
}
