package obs

// Latency is a sliding-window quantile estimator for request latencies:
// a fixed-size ring of the most recent observations, queried by
// nearest-rank quantile. The window keeps the estimate responsive to the
// current load (a histogram over the process lifetime would smear a
// latency regression across hours of old traffic) while bounding memory
// and keeping Observe O(1). Quantile sorts a copy of the window, so it
// is meant for scrape-time gauges (a few calls per scrape), not hot
// paths.
//
// Like the other instruments, a nil *Latency is a valid no-op receiver.

import (
	"sort"
	"sync"
	"time"
)

// DefaultLatencyWindow is the ring size used when NewLatency is given a
// non-positive window.
const DefaultLatencyWindow = 1024

// Latency records durations into a bounded ring and reports windowed
// quantiles. Safe for concurrent use.
type Latency struct {
	mu    sync.Mutex
	ring  []float64 // seconds
	next  int
	full  bool
	count int64
	sort  []float64 // scratch for Quantile
}

// NewLatency builds a Latency over the most recent window observations.
func NewLatency(window int) *Latency {
	if window <= 0 {
		window = DefaultLatencyWindow
	}
	return &Latency{ring: make([]float64, window)}
}

// Observe records one duration. Nil-safe.
func (l *Latency) Observe(d time.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.ring[l.next] = d.Seconds()
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	l.count++
	l.mu.Unlock()
}

// Count reports the total number of observations, including those that
// have rotated out of the window. Nil-safe.
func (l *Latency) Count() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Quantile reports the nearest-rank p-quantile (p in [0, 1]) over the
// current window, in seconds. It returns 0 when nothing has been
// observed. Nil-safe.
func (l *Latency) Quantile(p float64) float64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.ring)
	}
	if n == 0 {
		return 0
	}
	l.sort = append(l.sort[:0], l.ring[:n]...)
	sort.Float64s(l.sort)
	if p <= 0 {
		return l.sort[0]
	}
	if p >= 1 {
		return l.sort[n-1]
	}
	// Nearest rank: the smallest value with at least p·n observations at
	// or below it.
	rank := int(p * float64(n))
	if rank >= n {
		rank = n - 1
	}
	return l.sort[rank]
}
