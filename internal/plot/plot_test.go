package plot

import (
	"encoding/xml"
	"strings"
	"testing"
)

func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed XML: %v", err)
		}
	}
}

func TestLineSVG(t *testing.T) {
	l := &Line{
		Title:  "accuracy vs alpha",
		XLabel: "alpha",
		YLabel: "accuracy",
		Series: []Series{
			{Name: "DBLP", X: []float64{0.1, 0.5, 0.9}, Y: []float64{0.8, 0.9, 0.85}},
			{Name: "NUS", X: []float64{0.1, 0.5, 0.9}, Y: []float64{0.9, 0.93, 0.94}},
		},
	}
	svg, err := l.SVG()
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	for _, want := range []string{"accuracy vs alpha", "DBLP", "NUS", "<polyline", "<circle"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
}

func TestLineSVGLogAxis(t *testing.T) {
	l := &Line{
		Title: "convergence",
		LogY:  true,
		Series: []Series{
			{Name: "rho", X: []float64{1, 2, 3}, Y: []float64{1e-1, 1e-4, 1e-8}},
		},
	}
	svg, err := l.SVG()
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
}

func TestLineSVGErrors(t *testing.T) {
	if _, err := (&Line{}).SVG(); err == nil {
		t.Errorf("no series should error")
	}
	bad := &Line{Series: []Series{{Name: "x", X: []float64{1}, Y: []float64{1, 2}}}}
	if _, err := bad.SVG(); err == nil {
		t.Errorf("ragged series should error")
	}
	logBad := &Line{LogY: true, Series: []Series{{Name: "x", X: []float64{1}, Y: []float64{0}}}}
	if _, err := logBad.SVG(); err == nil {
		t.Errorf("nonpositive log-axis value should error")
	}
}

func TestLineSVGDegenerateRanges(t *testing.T) {
	// A single flat point must not divide by zero.
	l := &Line{Series: []Series{{Name: "p", X: []float64{1}, Y: []float64{2}}}}
	svg, err := l.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "NaN") {
		t.Errorf("degenerate range produced NaN coordinates")
	}
	wellFormed(t, svg)
}

func TestBarsSVG(t *testing.T) {
	b := &Bars{
		Title:  "link importance",
		YLabel: "z",
		Groups: []string{"author", "concept"},
		Labels: []string{"class A", "class B"},
		Values: [][]float64{{0.2, 0.25}, {0.3, 0.28}},
	}
	svg, err := b.SVG()
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	if got := strings.Count(svg, "<rect"); got < 4 {
		t.Errorf("rects = %d, want at least 4 bars", got)
	}
	for _, want := range []string{"author", "concept", "class A"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestBarsSVGErrors(t *testing.T) {
	cases := []*Bars{
		{},
		{Groups: []string{"g"}, Labels: []string{"l"}, Values: [][]float64{}},
		{Groups: []string{"g"}, Labels: []string{"l"}, Values: [][]float64{{1, 2}}},
		{Groups: []string{"g"}, Labels: []string{"l"}, Values: [][]float64{{-1}}},
	}
	for i, c := range cases {
		if _, err := c.SVG(); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestBarsSVGAllZero(t *testing.T) {
	b := &Bars{Groups: []string{"g"}, Labels: []string{"l"}, Values: [][]float64{{0}}}
	svg, err := b.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "NaN") {
		t.Errorf("all-zero bars produced NaN")
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b & "c"`); got != "a&lt;b &amp; &quot;c&quot;" {
		t.Errorf("escape = %q", got)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		1234:  "1.2e+03",
		0.001: "1.0e-03",
		42:    "42",
		0.5:   "0.50",
		0:     "0.00",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestTruncate(t *testing.T) {
	if got := truncate("short", 12); got != "short" {
		t.Errorf("truncate short = %q", got)
	}
	if got := truncate("averylongname", 6); len(got) > 8 { // utf-8 ellipsis
		t.Errorf("truncate long = %q", got)
	}
}
