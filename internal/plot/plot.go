// Package plot renders the experiment figures as standalone SVG files
// using only the standard library: line charts for the parameter sweeps
// and convergence curves (Figs. 6–10) and grouped bar charts for the
// link-importance profiles (Fig. 5).
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X, Y []float64
	// LogY plots log10(y) (used for convergence residuals).
}

// Line describes a line chart.
type Line struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// LogY switches the y axis to log10 (residual plots).
	LogY bool
}

const (
	width   = 640.0
	height  = 400.0
	marginL = 70.0
	marginR = 140.0
	marginT = 40.0
	marginB = 50.0
)

var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f"}

// SVG renders the chart.
func (l *Line) SVG() (string, error) {
	if len(l.Series) == 0 {
		return "", fmt.Errorf("plot: no series")
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range l.Series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			return "", fmt.Errorf("plot: series %q has %d x and %d y points", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			y := s.Y[i]
			if l.LogY {
				if y <= 0 {
					return "", fmt.Errorf("plot: series %q has nonpositive y on a log axis", s.Name)
				}
				y = math.Log10(y)
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	plotW := width - marginL - marginR
	plotH := height - marginT - marginB
	px := func(x float64) float64 { return marginL + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 {
		if l.LogY {
			y = math.Log10(y)
		}
		return marginT + plotH - (y-minY)/(maxY-minY)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n", width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%g" y="20" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n", marginL, escape(l.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-12, escape(l.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%g" font-family="sans-serif" font-size="11" transform="rotate(-90 16 %g)" text-anchor="middle">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, escape(l.YLabel))

	// Ticks: 5 per axis.
	for t := 0; t <= 4; t++ {
		fx := minX + (maxX-minX)*float64(t)/4
		fy := minY + (maxY-minY)*float64(t)/4
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px(fx), marginT+plotH+16, formatTick(fx))
		label := fy
		if l.LogY {
			label = math.Pow(10, fy)
		}
		yPix := marginT + plotH - plotH*float64(t)/4
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginL-6, yPix+4, formatTick(label))
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#dddddd"/>`+"\n", marginL, yPix, marginL+plotW, yPix)
	}

	// Series polylines + legend.
	for si, s := range l.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`+"\n", color, strings.Join(pts, " "))
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n", px(s.X[i]), py(s.Y[i]), color)
		}
		ly := marginT + 16*float64(si)
		fmt.Fprintf(&b, `<rect x="%g" y="%g" width="10" height="10" fill="%s"/>`+"\n", marginL+plotW+10, ly, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n", marginL+plotW+24, ly+9, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// Bars describes a grouped bar chart: one group per Group, one bar per
// Label within each group.
type Bars struct {
	Title  string
	YLabel string
	Groups []string
	Labels []string
	// Values[g][l] is the bar height of label l in group g.
	Values [][]float64
}

// SVG renders the chart.
func (bc *Bars) SVG() (string, error) {
	if len(bc.Groups) == 0 || len(bc.Labels) == 0 {
		return "", fmt.Errorf("plot: bars need groups and labels")
	}
	if len(bc.Values) != len(bc.Groups) {
		return "", fmt.Errorf("plot: %d value rows for %d groups", len(bc.Values), len(bc.Groups))
	}
	maxY := 0.0
	for g, row := range bc.Values {
		if len(row) != len(bc.Labels) {
			return "", fmt.Errorf("plot: group %d has %d values for %d labels", g, len(row), len(bc.Labels))
		}
		for _, v := range row {
			if v < 0 {
				return "", fmt.Errorf("plot: negative bar value %v", v)
			}
			maxY = math.Max(maxY, v)
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	plotW := width - marginL - marginR
	plotH := height - marginT - marginB
	groupW := plotW / float64(len(bc.Groups))
	barW := groupW * 0.8 / float64(len(bc.Labels))

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n", width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%g" y="20" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n", marginL, escape(bc.Title))
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(&b, `<text x="16" y="%g" font-family="sans-serif" font-size="11" transform="rotate(-90 16 %g)" text-anchor="middle">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, escape(bc.YLabel))

	for gi, group := range bc.Groups {
		gx := marginL + groupW*float64(gi) + groupW*0.1
		for li := range bc.Labels {
			v := bc.Values[gi][li]
			h := v / maxY * plotH
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				gx+barW*float64(li), marginT+plotH-h, barW, h, palette[li%len(palette)])
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%g" font-family="sans-serif" font-size="9" text-anchor="middle">%s</text>`+"\n",
			gx+groupW*0.4, marginT+plotH+14, escape(truncate(group, 12)))
	}
	for li, label := range bc.Labels {
		ly := marginT + 16*float64(li)
		fmt.Fprintf(&b, `<rect x="%g" y="%g" width="10" height="10" fill="%s"/>`+"\n", marginL+plotW+10, ly, palette[li%len(palette)])
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n", marginL+plotW+24, ly+9, escape(label))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000 || (av < 0.01 && av > 0):
		return fmt.Sprintf("%.1e", v)
	case av >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
