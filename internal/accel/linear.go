package accel

import (
	"fmt"
	"math"

	"tmark/internal/par"
	"tmark/internal/sparse"
)

// System is the linearized T-Mark operator: the fast tier's one-matrix
// stand-in for the coupled tensor fixed point. Freezing the relation
// distribution z at a constant z̄ turns the cubic contraction
// O ×̄₁ x ×̄₃ z into an ordinary sparse matvec P·x with
// P[i,j] = Σ_k o[i,j,k]·z̄_k, so the update
//
//	x = rel·(P·x + dangling) + β·W·x + α·l,  rel = 1−α−β
//
// is a linear system (I − rel·P − β·W)·x = α·l whose iteration matrix
// has L1 operator norm rel+β = 1−α < 1: Jacobi sweeps contract
// geometrically at rate ≤ 1−α, and the sweep count to tolerance ε is at
// most log(ε)/log(1−α) regardless of the graph.
//
// Accuracy bound: the fast tier's error against the exact coupled
// solution is governed by how far the true stationary z̄* drifts from
// the frozen z̄ — ‖x_fast − x_exact‖₁ ≤ (rel/α)·L·‖z̄ − z̄*‖₁, where
// L ≤ 1 is the Lipschitz constant of the collapsed contraction in its
// z argument — and by dropping the ICA reseed entirely. The golden
// equivalence suite pins the realised envelope (accuracy/NMI deltas) on
// the reference datasets; callers needing exact answers use the plain
// or accelerated tiers.
type System struct {
	n      int
	rel    float64 // (1−α−β) weight of the collapsed tensor term
	beta   float64 // feature-similarity weight
	alpha  float64 // restart weight
	p      *sparse.Matrix
	w      Matvec    // feature similarity operator, nil when β = 0
	dangle []float64 // per-source-node dangling weight of the collapsed P
}

// Matvec is the feature-similarity operator slot of the linearized
// system — anything with the sparse-matrix MulVec shape.
type Matvec interface {
	MulVec(x, dst []float64)
}

// NewSystem assembles the linearized operator from the collapsed tensor
// (COO triplets plus per-node dangling weights, as produced by
// tensor.CollapseZ), the feature operator w (nil when beta is zero) and
// the T-Mark mixture weights. Duplicate (row, col) triplets are summed.
func NewSystem(n int, rows, cols []int32, vals []float64, dangle []float64, w Matvec, alpha, beta float64) (*System, error) {
	if len(rows) != len(cols) || len(rows) != len(vals) {
		return nil, fmt.Errorf("accel: triplet slices disagree: %d rows, %d cols, %d vals", len(rows), len(cols), len(vals))
	}
	if len(dangle) != n {
		return nil, fmt.Errorf("accel: dangle length %d, want %d", len(dangle), n)
	}
	rel := 1 - alpha - beta
	if alpha <= 0 || alpha >= 1 || beta < 0 || rel < 0 {
		return nil, fmt.Errorf("accel: weights out of range: alpha=%g beta=%g rel=%g", alpha, beta, rel)
	}
	ts := make([]sparse.Triplet, len(rows))
	for q := range rows {
		ts[q] = sparse.Triplet{Row: int(rows[q]), Col: int(cols[q]), Value: vals[q]}
	}
	return &System{
		n:      n,
		rel:    rel,
		beta:   beta,
		alpha:  alpha,
		p:      sparse.FromTriplets(n, n, ts),
		w:      w,
		dangle: dangle,
	}, nil
}

// NNZ returns the stored-entry count of the collapsed transition matrix.
func (s *System) NNZ() int { return s.p.NNZ() }

// Apply evaluates one Jacobi sweep dst = rel·(P·x + uniform dangling
// mass) + β·W·x + α·l. scratch must hold n values; pool nil or serial
// runs the matvec on the caller's goroutine.
func (s *System) Apply(pool *par.Pool, ms *sparse.MulScratch, x, l, dst, scratch []float64) {
	if pool.Serial() || ms == nil {
		s.p.MulVec(x, dst)
	} else {
		s.p.MulVecParallel(pool, ms, x, dst)
	}
	// Dangling columns of the collapsed operator spread their mass
	// uniformly, exactly as the tensor's implicit 1/n columns do.
	var lost float64
	for j, d := range s.dangle {
		lost += d * x[j]
	}
	uni := s.rel * lost / float64(s.n)
	for i := range dst {
		dst[i] = s.rel*dst[i] + uni + s.alpha*l[i]
	}
	if s.beta != 0 && s.w != nil {
		s.w.MulVec(x, scratch)
		for i := range dst {
			dst[i] += s.beta * scratch[i]
		}
	}
}

// Solve runs Jacobi sweeps from x0 (uniform when nil) until the L1
// difference between consecutive sweeps drops below eps or maxSweeps is
// reached. It reports the solution, the per-sweep residual trace (whose
// length is the sweep count) and the final residual. The iterate stays
// on the simplex up to rounding — each sweep maps a distribution to a
// distribution — so no renormalisation is needed between sweeps.
func (s *System) Solve(pool *par.Pool, ms *sparse.MulScratch, l, x0 []float64, eps float64, maxSweeps int) (x, trace []float64, rho float64) {
	n := s.n
	x = make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	} else {
		for i := range x {
			x[i] = 1 / float64(n)
		}
	}
	xn := make([]float64, n)
	scratch := make([]float64, n)
	rho = math.Inf(1)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		s.Apply(pool, ms, x, l, xn, scratch)
		rho = 0
		for i := range xn {
			rho += math.Abs(xn[i] - x[i])
		}
		x, xn = xn, x
		trace = append(trace, rho)
		if rho < eps {
			break
		}
	}
	return x, trace, rho
}
