package accel

import (
	"math"
	"math/rand"
	"testing"
)

// tinySystem builds a 4-node collapsed operator by hand: columns 0–2
// carry explicit stochastic columns, column 3 is fully dangling.
func tinySystem(t *testing.T, alpha, beta float64, w Matvec) *System {
	t.Helper()
	rows := []int32{1, 2, 0, 2, 0, 1}
	cols := []int32{0, 0, 1, 1, 2, 2}
	vals := []float64{0.5, 0.5, 0.3, 0.7, 0.9, 0.1}
	dangle := []float64{0, 0, 0, 1}
	s, err := NewSystem(4, rows, cols, vals, dangle, w, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The Jacobi solve must return a distribution that is a fixed point of
// Apply to within the requested tolerance, with a geometrically
// shrinking residual trace.
func TestSolveReachesFixedPoint(t *testing.T) {
	s := tinySystem(t, 0.2, 0, nil)
	l := []float64{1, 0, 0, 0}
	x, trace, rho := s.Solve(nil, nil, l, nil, 1e-12, 500)
	if rho >= 1e-12 {
		t.Fatalf("residual %v did not reach tolerance in %d sweeps", rho, len(trace))
	}
	var mass float64
	for _, v := range x {
		if v < 0 {
			t.Fatalf("negative probability %v", v)
		}
		mass += v
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Fatalf("solution mass %v, want 1", mass)
	}
	// Fixed point: one more sweep moves x by at most the tolerance scale.
	dst := make([]float64, 4)
	scratch := make([]float64, 4)
	s.Apply(nil, nil, x, l, dst, scratch)
	for i := range x {
		if math.Abs(dst[i]-x[i]) > 1e-10 {
			t.Fatalf("x[%d] moves by %v under Apply", i, dst[i]-x[i])
		}
	}
	// The contraction rate is at most 1−α: every residual must shrink at
	// least that fast once the iteration settles.
	for k := 2; k < len(trace); k++ {
		if trace[k] > trace[k-1]*(1-0.2)+1e-15 {
			t.Fatalf("sweep %d residual %v > %v·(1−α)", k, trace[k], trace[k-1])
		}
	}
}

// The documented sweep bound log(ε)/log(1−α) must hold regardless of the
// operator: check it on randomised systems across alpha values.
func TestSolveSweepCountWithinContractionBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, alpha := range []float64{0.05, 0.2, 0.8} {
		n := 30
		var rows, cols []int32
		var vals []float64
		dangle := make([]float64, n)
		for j := 0; j < n; j++ {
			if j%5 == 4 {
				dangle[j] = 1 // dangling source
				continue
			}
			// Three random targets with a normalised column.
			var sum float64
			w := make([]float64, 3)
			for q := range w {
				w[q] = rng.Float64() + 0.1
				sum += w[q]
			}
			for q := range w {
				rows = append(rows, int32(rng.Intn(n)))
				cols = append(cols, int32(j))
				vals = append(vals, w[q]/sum)
			}
		}
		s, err := NewSystem(n, rows, cols, vals, dangle, nil, alpha, 0)
		if err != nil {
			t.Fatal(err)
		}
		l := make([]float64, n)
		l[0] = 1
		eps := 1e-10
		_, trace, rho := s.Solve(nil, nil, l, nil, eps, 10000)
		if rho >= eps {
			t.Fatalf("alpha=%v: did not converge", alpha)
		}
		bound := int(math.Ceil(math.Log(eps/2)/math.Log(1-alpha))) + 2
		if len(trace) > bound {
			t.Fatalf("alpha=%v: %d sweeps, contraction bound allows %d", alpha, len(trace), bound)
		}
	}
}

// Out-of-range mixture weights and inconsistent slices must be rejected
// at construction, not discovered as NaNs mid-solve.
func TestNewSystemValidation(t *testing.T) {
	dangle := make([]float64, 4)
	if _, err := NewSystem(4, []int32{0}, []int32{0, 1}, []float64{1}, dangle, nil, 0.2, 0); err == nil {
		t.Fatal("mismatched triplet slices accepted")
	}
	if _, err := NewSystem(4, nil, nil, nil, []float64{1}, nil, 0.2, 0); err == nil {
		t.Fatal("short dangle slice accepted")
	}
	for _, bad := range [][2]float64{{0, 0}, {1, 0}, {0.2, -0.1}, {0.5, 0.6}} {
		if _, err := NewSystem(4, nil, nil, nil, dangle, nil, bad[0], bad[1]); err == nil {
			t.Fatalf("alpha=%v beta=%v accepted", bad[0], bad[1])
		}
	}
}
