// Package accel provides the two iteration-reducing engines of the
// solver's quality tiers:
//
//   - An extrapolated power method (Extrapolator): SQUAREM-style momentum
//     over the concatenated (x, z) iterate sequence of the T-Mark
//     fixed-point loop. Every third committed iterate the extrapolator
//     proposes a candidate far along the observed convergence direction;
//     the candidate is projected back onto the simplex and handed to the
//     solver, which vets it through one ordinary iteration pass (finite,
//     mass-conserving, residual strictly below the last committed one)
//     and falls back to plain iteration from the last committed iterate
//     when the vet fails. Answers therefore remain exact: every committed
//     iterate passed the same health probes a plain run applies.
//
//   - A linearized T-Mark solve (System): the relation distribution z is
//     frozen at a fixed z̄, which collapses the cubic tensor contraction
//     into one sparse matrix P and turns the fixed-point loop into a
//     single sparse linear solve (Jacobi sweeps, geometric convergence at
//     rate ≤ 1−α). The answer is approximate — see System for the bound —
//     but needs no tensor streaming at all.
//
// The package is a leaf: it operates on raw float slices (blocked or
// flat) and never imports the solver, so the solver's lockstep loops can
// wire either engine in per column.
package accel

import (
	"math"

	"tmark/internal/fault"
)

// Extrapolation tuning. MinStep is the SQUAREM step length below which a
// proposal is pointless (s = −1 exactly reproduces the newest iterate).
// The step cap starts at initialMaxStep and doubles (up to stepCap) each
// time a jump that hit the cap is accepted — on a slowly mixing chain
// (contraction ρ → 1) the ideal step −1/(1−ρ) dwarfs any fixed cap, and
// the monotone vet already polices overshoot, so the cap only needs to
// tame the first jump from a cold curvature estimate; a rejection resets
// it. After maxConsecRejects consecutive rejected proposals the column
// sits out a cooldown of committed iterates before trying again, and the
// cooldown doubles (up to maxCooldown) on every consecutive shutoff —
// the monotone-residual vet keeps answers exact regardless, but every
// in-loop rejection costs one wasted lockstep pass, so a column whose
// current dynamics extrapolation cannot capture backs off exponentially
// instead of paying every window. Early iterations often reject (the
// trajectory is not yet dominated by one geometric mode) while the long
// tail accepts, which is why the backoff must re-engage rather than
// disable for good.
const (
	minStep          = -1.0
	initialMaxStep   = -64.0
	stepCap          = -4096.0
	maxConsecRejects = 2
	initialCooldown  = 8
	maxCooldown      = 256
	historyLen       = 3
)

// Counters aggregates one run's extrapolation activity across columns.
// The solver's driver goroutine owns it; plain ints suffice.
type Counters struct {
	Proposed int64 // candidates built (including fault-injected ones)
	Accepted int64 // candidates that passed the in-loop residual vet
	Rejected int64 // candidates discarded at propose time or by the vet
}

// Extrapolator accelerates one column of the lockstep solve. It watches
// the committed iterates (Observe), proposes extrapolated candidates
// when three consecutive ones are buffered (Propose), hands the
// candidate to the solver's block (ScatterCandidate, which also saves
// the pre-jump column for RestoreInto), and learns from the solver's
// verdict (Accept / Reject).
type Extrapolator struct {
	n, m int
	hist [historyLen][]float64 // committed (x‖z) iterates, oldest first
	nh   int

	cand    []float64 // projected candidate, valid while pending
	backup  []float64 // pre-jump committed column, for RestoreInto
	pending bool

	maxStep float64 // current (negative) step cap; grows on accepted capped jumps
	capped  bool    // the pending candidate's step hit maxStep

	consecRejects int
	cooldown      int // committed iterates to sit out before proposing again
	nextCooldown  int // length of the next shutoff window

	cnt *Counters
}

// NewExtrapolator builds the per-column state for an n-node, m-relation
// model. cnt receives the column's proposal/accept/reject counts; nil
// disables counting.
func NewExtrapolator(n, m int, cnt *Counters) *Extrapolator {
	e := &Extrapolator{n: n, m: m, cnt: cnt, maxStep: initialMaxStep, nextCooldown: initialCooldown}
	for i := range e.hist {
		e.hist[i] = make([]float64, n+m)
	}
	e.cand = make([]float64, n+m)
	e.backup = make([]float64, n+m)
	return e
}

// Active reports whether the extrapolator is currently proposing
// candidates; false while a shutoff cooldown is running. The solver must
// keep calling Observe during a cooldown — those committed iterates are
// what run the cooldown down.
func (e *Extrapolator) Active() bool { return e != nil && e.cooldown == 0 }

// Pending reports whether a candidate is waiting to be scattered into
// the block (or is currently riding a vet pass).
func (e *Extrapolator) Pending() bool { return e != nil && e.pending }

// Observe appends the committed iterate of this column — x at column col
// of the n-row block x (stride bx), z likewise — to the history buffer.
// Call it only for committed (health-checked) iterates; candidates under
// vet must not enter the history.
func (e *Extrapolator) Observe(x, z []float64, col, bx int) {
	if e == nil || e.pending {
		return
	}
	if e.cooldown > 0 {
		// Sitting out a shutoff window: the commit runs the cooldown down
		// but is not buffered — the window restarts from fresh iterates.
		e.cooldown--
		return
	}
	if e.nh == historyLen {
		// Slide: drop the oldest. Reached only when a full history did not
		// yield a proposal (step too small); keeping the window moving lets
		// the next commit retry.
		h0 := e.hist[0]
		copy(e.hist[:], e.hist[1:])
		e.hist[historyLen-1] = h0
		e.nh--
	}
	h := e.hist[e.nh]
	for r := 0; r < e.n; r++ {
		h[r] = x[r*bx+col]
	}
	for r := 0; r < e.m; r++ {
		h[e.n+r] = z[r*bx+col]
	}
	e.nh++
}

// Propose attempts to build an extrapolated candidate from the buffered
// history. It returns true when a candidate is ready for the next pass;
// false when the history is short, the step length is too small to beat
// the plain iterate, or the candidate died at the propose-time checks
// (non-finite after fault injection, or un-normalisable after clamping).
//
// The scheme is SQUAREM's S3 step over u = (x‖z): with three consecutive
// committed iterates h0, h1, h2,
//
//	r = h1 − h0,  v = h2 − 2·h1 + h0,  s = −‖r‖₂/‖v‖₂ (clamped to [−64, −1]),
//	u = h0 − 2s·r + s²·v,
//
// s = −1 reproduces h2 exactly, so |s| ≤ 1 proposes nothing. The x and z
// parts of u are each projected back onto the simplex (negative entries
// clamped to zero, then L1-normalised), so a scattered candidate is
// always a pair of probability vectors.
func (e *Extrapolator) Propose() bool {
	if e == nil || e.cooldown > 0 || e.pending || e.nh < historyLen {
		return false
	}
	h0, h1, h2 := e.hist[0], e.hist[1], e.hist[2]
	var rr, vv float64
	for i := range e.cand {
		r := h1[i] - h0[i]
		v := h2[i] - 2*h1[i] + h0[i]
		rr += r * r
		vv += v * v
	}
	if vv == 0 || rr == 0 {
		return false
	}
	s := -math.Sqrt(rr / vv)
	if s >= minStep { // |s| ≤ 1: the jump lands at or short of h2
		return false
	}
	e.capped = s < e.maxStep
	if e.capped {
		s = e.maxStep
	}
	for i := range e.cand {
		r := h1[i] - h0[i]
		v := h2[i] - 2*h1[i] + h0[i]
		e.cand[i] = h0[i] - 2*s*r + s*s*v
	}
	if e.cnt != nil {
		e.cnt.Proposed++
	}
	if fault.Enabled() {
		fault.Fire(fault.AccelPropose, e.cand, e.n, e.m)
	}
	if !projectSimplex(e.cand[:e.n]) || !projectSimplex(e.cand[e.n:]) {
		// Non-finite or massless candidate: reject at zero cost — no pass
		// is spent vetting it.
		e.noteReject()
		return false
	}
	e.pending = true
	return true
}

// ScatterCandidate writes the pending candidate into column col of the
// blocked x (n rows) and z (m rows), saving the column's current
// committed values first so RestoreInto can undo a rejected jump.
func (e *Extrapolator) ScatterCandidate(x, z []float64, col, bx int) {
	if !e.pending {
		panic("accel: ScatterCandidate without a pending candidate")
	}
	for r := 0; r < e.n; r++ {
		p := r*bx + col
		e.backup[r] = x[p]
		x[p] = e.cand[r]
	}
	for r := 0; r < e.m; r++ {
		p := r*bx + col
		e.backup[e.n+r] = z[p]
		z[p] = e.cand[e.n+r]
	}
}

// RestoreInto writes the saved pre-jump column back into column col of
// the blocked x and z — the solver calls it on the *next* iterates
// (xn/zn) of a rejected vet pass, so the wholesale commit that follows
// re-installs the last committed state and plain iteration resumes from
// exactly where it left off.
func (e *Extrapolator) RestoreInto(x, z []float64, col, bx int) {
	for r := 0; r < e.n; r++ {
		x[r*bx+col] = e.backup[r]
	}
	for r := 0; r < e.m; r++ {
		z[r*bx+col] = e.backup[e.n+r]
	}
}

// Accept records a successful vet: the candidate's iteration pass
// committed. The history restarts from scratch — the accepted iterate
// begins a new extrapolation window — and the backoff state resets. A
// jump that hit the step cap and was still accepted doubles the cap (up
// to stepCap): the curvature estimate wanted a longer step and the vet
// proved the direction sound, the signature of a slowly mixing chain
// whose ideal step −1/(1−ρ) far exceeds any fixed cap.
func (e *Extrapolator) Accept() {
	e.pending = false
	e.consecRejects = 0
	e.nextCooldown = initialCooldown
	if e.capped && e.maxStep > stepCap {
		e.maxStep *= 2
		if e.maxStep < stepCap {
			e.maxStep = stepCap
		}
	}
	e.nh = 0
	if e.cnt != nil {
		e.cnt.Accepted++
	}
}

// Reject records a failed vet (non-monotone residual, corrupted pass).
// After maxConsecRejects consecutive rejections the column's
// extrapolation sits out an exponentially growing cooldown of committed
// iterates, bounding the fraction of passes a hostile convergence path
// can waste while still re-engaging once the trajectory settles into a
// geometric tail.
func (e *Extrapolator) Reject() {
	e.pending = false
	e.noteReject()
}

func (e *Extrapolator) noteReject() {
	e.nh = 0
	e.maxStep = initialMaxStep
	e.consecRejects++
	if e.consecRejects >= maxConsecRejects {
		e.cooldown = e.nextCooldown
		if e.nextCooldown < maxCooldown {
			e.nextCooldown *= 2
		}
	}
	if e.cnt != nil {
		e.cnt.Rejected++
	}
}

// projectSimplex clamps negative entries to zero and L1-normalises in
// place, reporting false (vector untouched beyond the clamp) when the
// result is not a probability vector: non-finite input or zero mass.
func projectSimplex(v []float64) bool {
	var sum float64
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
		if x < 0 {
			v[i] = 0
			continue
		}
		sum += x
	}
	if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		return false
	}
	inv := 1 / sum
	for i := range v {
		v[i] *= inv
	}
	return true
}
