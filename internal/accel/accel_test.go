package accel

import (
	"math"
	"testing"

	"tmark/internal/fault"
)

// observe pushes a flat (x‖z) iterate into the history through the
// blocked-layout API with a single-column block.
func observe(e *Extrapolator, u []float64) {
	e.Observe(u[:e.n], u[e.n:], 0, 1)
}

// geometric builds the iterate f + c·ρ^k·d, which is exactly the
// convergence path of a linear fixed-point iteration with contraction
// rate ρ along direction d.
func geometric(f, d []float64, c, rho float64, k int) []float64 {
	u := make([]float64, len(f))
	s := c * math.Pow(rho, float64(k))
	for i := range u {
		u[i] = f[i] + s*d[i]
	}
	return u
}

// On an exactly geometric iterate sequence SQUAREM's S3 step lands on
// the fixed point: s = −1/(1−ρ) makes (1 − s(ρ−1))² vanish. The
// proposal must therefore reproduce f to rounding.
func TestProposeLandsOnFixedPointOfGeometricSequence(t *testing.T) {
	n, m := 4, 2
	f := []float64{0.4, 0.3, 0.2, 0.1, 0.7, 0.3}
	// Mass-free perturbation per part, so every iterate is a pair of
	// distributions and the simplex projection is a no-op.
	d := []float64{0.02, -0.01, -0.02, 0.01, 0.05, -0.05}
	var cnt Counters
	e := NewExtrapolator(n, m, &cnt)

	for k := 0; k < 3; k++ {
		observe(e, geometric(f, d, 1, 0.9, k))
	}
	if !e.Propose() {
		t.Fatal("no proposal from a full geometric history")
	}
	if !e.Pending() {
		t.Fatal("proposal did not leave a pending candidate")
	}
	if cnt.Proposed != 1 || cnt.Accepted != 0 || cnt.Rejected != 0 {
		t.Fatalf("counters %+v, want exactly one proposal", cnt)
	}
	for i := range f {
		if math.Abs(e.cand[i]-f[i]) > 1e-12 {
			t.Fatalf("cand[%d] = %v, want fixed point %v", i, e.cand[i], f[i])
		}
	}
}

// A step length |s| ≤ 1 would land at or short of the newest iterate,
// so nothing is proposed and nothing is counted as a rejection.
func TestProposeSkipsShortSteps(t *testing.T) {
	n, m := 3, 1
	var cnt Counters
	e := NewExtrapolator(n, m, &cnt)
	// Oscillation: h2 = h0, so v = −2r and s = −1/2.
	h0 := []float64{0.5, 0.3, 0.2, 1}
	h1 := []float64{0.45, 0.35, 0.2, 1}
	observe(e, h0)
	observe(e, h1)
	observe(e, h0)
	if e.Propose() {
		t.Fatal("proposed a jump shorter than the plain iterate")
	}
	if e.Pending() || !e.Active() {
		t.Fatal("short-step skip changed pending/active state")
	}
	if cnt.Proposed != 0 || cnt.Rejected != 0 {
		t.Fatalf("counters %+v, want all zero (skip is free)", cnt)
	}
	// The window keeps sliding: one more observation of a genuinely
	// converging tail must yield a proposal.
	f := []float64{0.4, 0.35, 0.25, 1}
	d := []float64{0.03, -0.01, -0.02, 0}
	e.nh = 0
	for k := 0; k < 3; k++ {
		observe(e, geometric(f, d, 1, 0.8, k))
	}
	if !e.Propose() {
		t.Fatal("no proposal after the window slid onto a geometric tail")
	}
}

// ScatterCandidate must write only the target column and save what it
// overwrote; RestoreInto must put the saved column back.
func TestScatterAndRestoreRoundTrip(t *testing.T) {
	n, m, b, col := 3, 2, 4, 1
	e := NewExtrapolator(n, m, nil)
	f := []float64{0.5, 0.3, 0.2, 0.6, 0.4}
	d := []float64{0.01, -0.005, -0.005, 0.02, -0.02}
	for k := 0; k < 3; k++ {
		observe(e, geometric(f, d, 1, 0.9, k))
	}
	if !e.Propose() {
		t.Fatal("no proposal")
	}

	x := make([]float64, n*b)
	z := make([]float64, m*b)
	for i := range x {
		x[i] = float64(i) + 1
	}
	for i := range z {
		z[i] = -float64(i) - 1
	}
	xBefore := append([]float64(nil), x...)
	zBefore := append([]float64(nil), z...)

	e.ScatterCandidate(x, z, col, b)
	for r := 0; r < n; r++ {
		for c := 0; c < b; c++ {
			if c == col {
				if x[r*b+c] != e.cand[r] {
					t.Fatalf("x[%d,%d] = %v, want candidate %v", r, c, x[r*b+c], e.cand[r])
				}
			} else if x[r*b+c] != xBefore[r*b+c] {
				t.Fatalf("scatter touched x column %d", c)
			}
		}
	}
	for r := 0; r < m; r++ {
		if z[r*b+col] != e.cand[n+r] {
			t.Fatalf("z[%d] missing candidate", r)
		}
	}

	e.RestoreInto(x, z, col, b)
	for i := range x {
		if x[i] != xBefore[i] {
			t.Fatalf("restore left x[%d] = %v, want %v", i, x[i], xBefore[i])
		}
	}
	for i := range z {
		if z[i] != zBefore[i] {
			t.Fatalf("restore left z[%d] = %v, want %v", i, z[i], zBefore[i])
		}
	}
	if !e.Pending() {
		t.Fatal("restore must not resolve the pending verdict itself")
	}
}

// Two consecutive rejections shut the extrapolator off; an acceptance in
// between resets the countdown.
func TestConsecutiveRejectsDisable(t *testing.T) {
	fill := func(e *Extrapolator) {
		f := []float64{0.5, 0.3, 0.2, 1}
		d := []float64{0.02, -0.01, -0.01, 0}
		for k := 0; k < 3; k++ {
			observe(e, geometric(f, d, 1, 0.9, k))
		}
		if !e.Propose() {
			t.Fatal("no proposal")
		}
	}
	var cnt Counters
	e := NewExtrapolator(3, 1, &cnt)

	fill(e)
	e.Reject()
	if !e.Active() {
		t.Fatal("disabled after a single rejection")
	}
	fill(e)
	e.Accept()
	fill(e)
	e.Reject()
	if !e.Active() {
		t.Fatal("acceptance did not reset the rejection countdown")
	}
	fill(e)
	e.Reject()
	if e.Active() {
		t.Fatal("still active after two consecutive rejections")
	}
	if e.Propose() {
		t.Fatal("a cooling-down extrapolator proposed")
	}
	if cnt.Proposed != 4 || cnt.Accepted != 1 || cnt.Rejected != 3 {
		t.Fatalf("counters %+v, want 4 proposed / 1 accepted / 3 rejected", cnt)
	}

	// The shutoff is a cooldown, not a kill switch: observed commits run
	// it down (they are not buffered), and once it expires the
	// extrapolator proposes again from fresh history.
	f := []float64{0.5, 0.3, 0.2, 1}
	d := []float64{0.02, -0.01, -0.01, 0}
	for k := 0; k < initialCooldown; k++ {
		observe(e, geometric(f, d, 1, 0.9, k))
		if e.Propose() {
			t.Fatalf("proposed %d commits into an %d-commit cooldown", k+1, initialCooldown)
		}
	}
	if !e.Active() {
		t.Fatal("cooldown did not expire after its window of commits")
	}
	fill(e)
	if cnt.Proposed != 5 {
		t.Fatalf("proposed %d, want 5 after the cooldown re-engaged", cnt.Proposed)
	}

	// Consecutive shutoffs back off exponentially: the next rejection
	// (consecutive count is still past the threshold) opens a window
	// twice as long.
	e.Reject()
	for k := 0; k < 2*initialCooldown; k++ {
		if e.Active() {
			t.Fatalf("second cooldown expired after %d commits, want %d", k, 2*initialCooldown)
		}
		observe(e, geometric(f, d, 1, 0.9, k))
	}
	if !e.Active() {
		t.Fatal("second cooldown did not expire after twice the window")
	}
}

// All query methods must be safe on a nil extrapolator — the mixed-tier
// column solver keeps nil entries for exact-quality queries.
func TestNilExtrapolatorIsInert(t *testing.T) {
	var e *Extrapolator
	if e.Active() || e.Pending() {
		t.Fatal("nil extrapolator reports activity")
	}
	e.Observe(nil, nil, 0, 1) // must not panic
	if e.Propose() {
		t.Fatal("nil extrapolator proposed")
	}
}

// A candidate poisoned at the fault point dies at the propose-time
// projection: no pending candidate, one rejection counted, and the
// wasted-pass cost is zero because nothing was scattered.
func TestFaultPoisonedProposalRejectsAtProposeTime(t *testing.T) {
	var cnt Counters
	e := NewExtrapolator(3, 1, &cnt)
	remove := fault.Inject(fault.AccelPropose, func(args ...any) {
		args[0].([]float64)[0] = math.NaN()
	})
	defer remove()

	f := []float64{0.5, 0.3, 0.2, 1}
	d := []float64{0.02, -0.01, -0.01, 0}
	for k := 0; k < 3; k++ {
		observe(e, geometric(f, d, 1, 0.9, k))
	}
	if e.Propose() {
		t.Fatal("NaN candidate survived the propose-time projection")
	}
	if e.Pending() {
		t.Fatal("poisoned proposal left a pending candidate")
	}
	if cnt.Proposed != 1 || cnt.Rejected != 1 || cnt.Accepted != 0 {
		t.Fatalf("counters %+v, want 1 proposed / 1 rejected", cnt)
	}
}

func TestProjectSimplex(t *testing.T) {
	v := []float64{0.5, -0.25, 1.5}
	if !projectSimplex(v) {
		t.Fatal("healthy vector rejected")
	}
	if v[1] != 0 {
		t.Fatalf("negative entry not clamped: %v", v[1])
	}
	var sum float64
	for _, x := range v {
		sum += x
	}
	if math.Abs(sum-1) > 1e-15 {
		t.Fatalf("projected mass %v, want 1", sum)
	}
	if projectSimplex([]float64{math.NaN(), 1}) {
		t.Fatal("NaN accepted")
	}
	if projectSimplex([]float64{math.Inf(1), 1}) {
		t.Fatal("Inf accepted")
	}
	if projectSimplex([]float64{-1, -2}) {
		t.Fatal("massless vector accepted")
	}
	if projectSimplex([]float64{0, 0}) {
		t.Fatal("zero vector accepted")
	}
}
