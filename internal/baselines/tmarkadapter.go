package baselines

import (
	"math/rand"

	"tmark/internal/hin"
	"tmark/internal/tmark"
	"tmark/internal/vec"
)

// TMark adapts the core algorithm to the Method interface so the
// experiment harness can sweep it alongside the baselines. With ICA=false
// it is the TensorRrCc predecessor (Han et al., ICDM 2017).
type TMark struct {
	// Config holds the hyper-parameters; zero value uses the paper's
	// defaults.
	Config tmark.Config
	// ICA toggles the iterative label update (T-Mark vs TensorRrCc).
	ICA bool
}

// NewTMark returns the full algorithm with the paper's default parameters.
func NewTMark() *TMark { return &TMark{Config: tmark.DefaultConfig(), ICA: true} }

// NewTensorRrCc returns the ICDM'17 predecessor (no ICA label update).
func NewTensorRrCc() *TMark {
	cfg := tmark.DefaultConfig()
	cfg.ICAUpdate = false
	return &TMark{Config: cfg}
}

// Name implements Method.
func (t *TMark) Name() string {
	if t.ICA {
		return "T-Mark"
	}
	return "TensorRrCc"
}

// Scores implements Method.
func (t *TMark) Scores(g *hin.Graph, rng *rand.Rand) (*vec.Matrix, error) {
	cfg := t.Config
	if cfg.MaxIterations == 0 {
		cfg = tmark.DefaultConfig()
	}
	cfg.ICAUpdate = t.ICA
	model, err := tmark.New(g, cfg)
	if err != nil {
		return nil, err
	}
	res := model.Run()
	scores := res.LiftedProbabilities()
	clampTraining(g, scores)
	return scores, nil
}

// Compile-time interface checks for every method in the package.
var (
	_ Method = (*ICA)(nil)
	_ Method = (*Hcc)(nil)
	_ Method = (*WVRN)(nil)
	_ Method = (*EMR)(nil)
	_ Method = (*HighwayNet)(nil)
	_ Method = (*GraphInception)(nil)
	_ Method = (*TMark)(nil)
)

// All returns the paper's nine-method comparison suite in table order.
func All() []Method {
	return []Method{
		NewTMark(),
		NewTensorRrCc(),
		NewGraphInception(),
		NewHighwayNet(),
		NewHcc(),
		NewHccSS(),
		NewWVRN(),
		NewEMR(),
		NewICA(),
	}
}
