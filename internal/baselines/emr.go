package baselines

import (
	"fmt"
	"math/rand"

	"tmark/internal/classify"
	"tmark/internal/hin"
	"tmark/internal/vec"
)

// EMR is the Ensemble of Multi-Relational classifiers (Preisach &
// Schmidt-Thieme 2008): one ICA classifier with an SVM base per link type,
// combined by averaging their probability outputs. Every link type carries
// the same vote weight, so relative link importance is ignored — but on
// very sparse per-type graphs the ensemble's pooling wins, which is the
// paper's Movies finding.
type EMR struct {
	// Base trains each member's classifier; nil defaults to the linear SVM
	// the paper uses.
	Base classify.Trainer
	// Rounds is the number of ICA iterations per member.
	Rounds int
}

// NewEMR returns the ensemble with the defaults used in the experiments.
func NewEMR() *EMR { return &EMR{Rounds: 5} }

// Name implements Method.
func (e *EMR) Name() string { return "EMR" }

// Scores implements Method.
func (e *EMR) Scores(g *hin.Graph, rng *rand.Rand) (*vec.Matrix, error) {
	rounds := e.Rounds
	if rounds <= 0 {
		rounds = 5
	}
	perType := g.NeighborLists()
	n, q := g.N(), g.Q()
	sum := vec.NewMatrix(n, q)
	for k := range perType {
		base := e.Base
		if base == nil {
			base = classify.NewSVM(rng.Int63())
		}
		member, err := runICA(g, [][][]int{perType[k]}, base, rounds, 0)
		if err != nil {
			return nil, fmt.Errorf("baselines: EMR member %d: %w", k, err)
		}
		for i := range sum.Data {
			sum.Data[i] += member.Data[i]
		}
	}
	for i := 0; i < n; i++ {
		vec.Normalize1(sum.Row(i))
	}
	clampTraining(g, sum)
	return sum, nil
}
