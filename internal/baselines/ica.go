package baselines

import (
	"fmt"
	"math/rand"

	"tmark/internal/classify"
	"tmark/internal/hin"
	"tmark/internal/vec"
)

// ICA is the classic Iterative Classification Algorithm (Sen et al. 2008)
// used as the paper's simplest baseline. As the paper prescribes, the
// multiple link types are aggregated into one untyped neighbour set, so ICA
// cannot exploit the relative importance of links.
type ICA struct {
	// Base trains the per-iteration classifier; nil defaults to logistic
	// regression.
	Base classify.Trainer
	// Rounds is the number of collective-inference iterations.
	Rounds int
}

// NewICA returns the baseline with the defaults used in the experiments.
func NewICA() *ICA { return &ICA{Rounds: 10} }

// Name implements Method.
func (a *ICA) Name() string { return "ICA" }

// Scores implements Method.
func (a *ICA) Scores(g *hin.Graph, rng *rand.Rand) (*vec.Matrix, error) {
	base := a.Base
	if base == nil {
		base = classify.NewLogistic(rng.Int63())
	}
	rounds := a.Rounds
	if rounds <= 0 {
		rounds = 10
	}
	neighbors := aggregateNeighbors(g)
	return runICA(g, [][][]int{neighbors}, base, rounds, 0)
}

// aggregateNeighbors merges every relation into one undirected-ish
// neighbour list (directed edges contribute their forward direction).
func aggregateNeighbors(g *hin.Graph) [][]int {
	merged := make([][]int, g.N())
	for _, lists := range g.NeighborLists() {
		for i, ns := range lists {
			merged[i] = append(merged[i], ns...)
		}
	}
	return merged
}

// runICA is the shared collective-inference engine behind ICA, Hcc and
// EMR: node features are the content vector concatenated with, per
// neighbour group, the aggregated label distribution of the node's
// neighbours. selfTrain > 0 enables the semiICA self-training extension:
// after each round, that fraction of the most confident unlabelled nodes
// joins the training set.
func runICA(g *hin.Graph, groups [][][]int, base classify.Trainer, rounds int, selfTrain float64) (*vec.Matrix, error) {
	n, q := g.N(), g.Q()
	scores := vec.NewMatrix(n, q)
	// Bootstrap: every unlabelled node starts at the class prior.
	prior := classPrior(g)
	for i := 0; i < n; i++ {
		copy(scores.Row(i), prior)
	}
	clampTraining(g, scores)

	content := g.FeatureMatrix()
	dim := 0
	if len(content) > 0 && content[0] != nil {
		dim = len(content[0])
	}
	featDim := dim + len(groups)*q
	buildFeature := func(i int, dst []float64) {
		copy(dst[:dim], content[i])
		off := dim
		for _, group := range groups {
			agg := dst[off : off+q]
			vec.Fill(agg, 0)
			for _, nb := range group[i] {
				vec.Axpy(1, scores.Row(nb), agg)
			}
			vec.Normalize1(agg)
			off += q
		}
	}

	trainIdx, trainLabels := trainingSet(g)
	if len(trainIdx) == 0 {
		return nil, fmt.Errorf("baselines: %s needs labelled nodes", "ICA")
	}
	extraIdx := []int{}
	extraLabels := []int{}

	for round := 0; round < rounds; round++ {
		// (Re)train on the current relational features of training nodes.
		X := make([][]float64, 0, len(trainIdx)+len(extraIdx))
		y := make([]int, 0, cap(X))
		for p, i := range trainIdx {
			row := make([]float64, featDim)
			buildFeature(i, row)
			X = append(X, row)
			y = append(y, trainLabels[p])
		}
		for p, i := range extraIdx {
			row := make([]float64, featDim)
			buildFeature(i, row)
			X = append(X, row)
			y = append(y, extraLabels[p])
		}
		model, err := base.Train(X, y, q)
		if err != nil {
			return nil, fmt.Errorf("baselines: ICA round %d: %w", round, err)
		}
		// Re-classify every unlabelled node.
		row := make([]float64, featDim)
		for i := 0; i < n; i++ {
			if g.Labeled(i) {
				continue
			}
			buildFeature(i, row)
			copy(scores.Row(i), model.Probabilities(row))
		}
		clampTraining(g, scores)
		if selfTrain > 0 {
			extraIdx, extraLabels = confidentNodes(g, scores, selfTrain)
		}
	}
	return scores, nil
}

// confidentNodes returns the top fraction of unlabelled nodes by maximum
// class probability, with their current predictions, for self-training.
func confidentNodes(g *hin.Graph, scores *vec.Matrix, fraction float64) (idx []int, labels []int) {
	type cand struct {
		i    int
		conf float64
		c    int
	}
	var cands []cand
	for i := 0; i < g.N(); i++ {
		if g.Labeled(i) {
			continue
		}
		row := scores.Row(i)
		c := vec.Argmax(row)
		cands = append(cands, cand{i: i, conf: row[c], c: c})
	}
	take := int(fraction * float64(len(cands)))
	if take == 0 {
		return nil, nil
	}
	// Partial selection by sorting; n is small in these experiments.
	for a := 0; a < take && a < len(cands); a++ {
		best := a
		for b := a + 1; b < len(cands); b++ {
			if cands[b].conf > cands[best].conf {
				best = b
			}
		}
		cands[a], cands[best] = cands[best], cands[a]
		idx = append(idx, cands[a].i)
		labels = append(labels, cands[a].c)
	}
	return idx, labels
}
