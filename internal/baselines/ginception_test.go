package baselines

import (
	"math"
	"math/rand"
	"testing"

	"tmark/internal/hin"
)

// propagateBlocks must compute the degree-normalised neighbour average,
// per relation, per power.
func TestPropagateBlocks(t *testing.T) {
	g := hin.New("a", "b")
	n0 := g.AddNode("", []float64{1, 0})
	n1 := g.AddNode("", []float64{0, 1})
	n2 := g.AddNode("", []float64{1, 1})
	r := g.AddRelation("r", false)
	g.AddEdge(r, n0, n1)
	g.AddEdge(r, n1, n2)

	rows := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	blocks := propagateBlocks(g, rows, 2)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d, want 2 (one relation, two powers)", len(blocks))
	}
	hop1 := blocks[0]
	// n0's only neighbour is n1 → hop1[n0] = rows[n1].
	if hop1[0][0] != 0 || hop1[0][1] != 1 {
		t.Errorf("hop1[n0] = %v, want [0 1]", hop1[0])
	}
	// n1 neighbours n0 and n2 → average [1, 0.5].
	if math.Abs(hop1[1][0]-1) > 1e-12 || math.Abs(hop1[1][1]-0.5) > 1e-12 {
		t.Errorf("hop1[n1] = %v, want [1 0.5]", hop1[1])
	}
	// hop2[n0] = hop1[n1].
	hop2 := blocks[1]
	if math.Abs(hop2[0][0]-hop1[1][0]) > 1e-12 {
		t.Errorf("hop2[n0] = %v, want hop1[n1] = %v", hop2[0], hop1[1])
	}
}

// A node with no neighbours propagates to the zero vector, not NaN.
func TestPropagateBlocksIsolatedNode(t *testing.T) {
	g := hin.New("a")
	g.AddNode("", []float64{1})
	g.AddNode("", []float64{2})
	g.AddRelation("r", false)
	blocks := propagateBlocks(g, [][]float64{{1}, {2}}, 1)
	for i, row := range blocks[0] {
		if row[0] != 0 {
			t.Errorf("isolated node %d propagated %v, want 0", i, row)
		}
	}
}

// GI label blocks are built from the training labels only: relabelling a
// test node must not change its input representation.
func TestGraphInceptionUsesTrainingLabelsOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, _, _ := maskedProblem(rng, 60, 0.3)
	gi := &GraphInception{Depth: 1, Hidden: 8, Epochs: 5}
	s1, err := gi.Scores(g, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := gi.Scores(g, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1.Data {
		if s1.Data[i] != s2.Data[i] {
			t.Fatalf("GI not deterministic under fixed RNG")
		}
	}
}

func TestGraphInceptionDefaults(t *testing.T) {
	gi := &GraphInception{} // zero value must self-correct
	rng := rand.New(rand.NewSource(9))
	g, _, _ := maskedProblem(rng, 40, 0.4)
	if _, err := gi.Scores(g, rand.New(rand.NewSource(2))); err != nil {
		t.Fatalf("zero-value GI should run with defaults: %v", err)
	}
}

func TestEMRCustomBase(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, truth, testMask := maskedProblem(rng, 80, 0.4)
	emr := &EMR{Rounds: 3}
	scores, err := emr.Scores(g, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if acc := evalAccuracy(Predict(scores), truth, testMask); acc < 0.4 {
		t.Errorf("EMR accuracy %.3f too low", acc)
	}
}

func evalAccuracy(pred, truth []int, mask []bool) float64 {
	hits, total := 0, 0
	for i := range pred {
		if !mask[i] || truth[i] < 0 {
			continue
		}
		total++
		if pred[i] == truth[i] {
			hits++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

func TestHighwayNetEpochsOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g, _, _ := maskedProblem(rng, 40, 0.4)
	hn := &HighwayNet{Hidden: 8, Depth: 1, Epochs: 2}
	if _, err := hn.Scores(g, rand.New(rand.NewSource(4))); err != nil {
		t.Fatalf("HN with overridden epochs failed: %v", err)
	}
}

func TestHighwayNetRequiresFeatures(t *testing.T) {
	g := hin.New("a")
	id := g.AddNode("", nil)
	g.SetLabels(id, 0)
	for _, m := range []Method{NewHighwayNet(), NewGraphInception()} {
		if _, err := m.Scores(g, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("%s without features should error", m.Name())
		}
	}
}
