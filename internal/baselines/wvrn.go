package baselines

import (
	"math/rand"
	"sort"

	"tmark/internal/hin"
	"tmark/internal/vec"
)

// WVRN is wvRN+RL (Macskassy 2007): the weighted-vote relational
// neighbour classifier with relaxation labelling. Content information is
// transferred into the relational structure by adding a k-nearest-
// neighbour cosine-similarity "link type", after which every link type is
// treated identically — which is exactly the weakness the paper contrasts
// T-Mark against.
type WVRN struct {
	// Rounds is the number of relaxation-labelling sweeps.
	Rounds int
	// ContentK is the number of similarity edges added per node; 0
	// disables the content link type.
	ContentK int
	// Damping mixes the previous estimate into each sweep for stability.
	Damping float64
}

// NewWVRN returns wvRN+RL with the defaults used in the experiments.
func NewWVRN() *WVRN { return &WVRN{Rounds: 30, ContentK: 5, Damping: 0.5} }

// Name implements Method.
func (w *WVRN) Name() string { return "wvRN+RL" }

// Scores implements Method.
func (w *WVRN) Scores(g *hin.Graph, rng *rand.Rand) (*vec.Matrix, error) {
	rounds := w.Rounds
	if rounds <= 0 {
		rounds = 30
	}
	damping := w.Damping
	if damping <= 0 || damping >= 1 {
		damping = 0.5
	}
	type wedge struct {
		to     int
		weight float64
	}
	n, q := g.N(), g.Q()
	adj := make([][]wedge, n)
	for k := range g.Relations {
		r := &g.Relations[k]
		for _, e := range r.Edges {
			adj[e.From] = append(adj[e.From], wedge{e.To, e.Weight})
			adj[e.To] = append(adj[e.To], wedge{e.From, e.Weight})
		}
	}
	if w.ContentK > 0 {
		for i, ns := range contentNeighbors(g.FeatureMatrix(), w.ContentK) {
			for _, nb := range ns {
				adj[i] = append(adj[i], wedge{nb.to, nb.sim})
			}
		}
	}

	scores := vec.NewMatrix(n, q)
	prior := classPrior(g)
	for i := 0; i < n; i++ {
		copy(scores.Row(i), prior)
	}
	clampTraining(g, scores)

	next := vec.NewMatrix(n, q)
	for round := 0; round < rounds; round++ {
		for i := 0; i < n; i++ {
			if g.Labeled(i) {
				copy(next.Row(i), scores.Row(i))
				continue
			}
			row := next.Row(i)
			vec.Fill(row, 0)
			var total float64
			for _, e := range adj[i] {
				vec.Axpy(e.weight, scores.Row(e.to), row)
				total += e.weight
			}
			if total == 0 {
				copy(row, prior)
				continue
			}
			vec.Scale(1/total, row)
			// Relaxation: damp toward the previous estimate.
			vec.Scale(1-damping, row)
			vec.Axpy(damping, scores.Row(i), row)
		}
		scores, next = next, scores
	}
	return scores, nil
}

type contentNeighbor struct {
	to  int
	sim float64
}

// contentNeighbors returns the top-k cosine neighbours per node (positive
// similarity only).
func contentNeighbors(features [][]float64, k int) [][]contentNeighbor {
	n := len(features)
	out := make([][]contentNeighbor, n)
	if n == 0 || features[0] == nil {
		return out
	}
	for i := 0; i < n; i++ {
		var cands []contentNeighbor
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if s := vec.Cosine(features[i], features[j]); s > 0 {
				cands = append(cands, contentNeighbor{j, s})
			}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].sim > cands[b].sim })
		if len(cands) > k {
			cands = cands[:k]
		}
		out[i] = cands
	}
	return out
}
