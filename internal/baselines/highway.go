package baselines

import (
	"fmt"
	"math/rand"

	"tmark/internal/hin"
	"tmark/internal/nn"
	"tmark/internal/vec"
)

// HighwayNet is the Highway Network baseline (Srivastava et al. 2015): a
// gated deep network over the node content features only. It sees no
// relational structure at all, which places it between the feature-only
// and relational methods in the paper's tables.
type HighwayNet struct {
	// Hidden is the width of the gated stack.
	Hidden int
	// Depth is the number of highway layers.
	Depth int
	// Epochs overrides the training epochs (0 = default).
	Epochs int
	// Dropout is the rate applied after the input projection; 0 disables.
	Dropout float64
}

// NewHighwayNet returns the configuration used in the experiments.
func NewHighwayNet() *HighwayNet { return &HighwayNet{Hidden: 32, Depth: 2, Dropout: 0.1} }

// Name implements Method.
func (h *HighwayNet) Name() string { return "HN" }

// Scores implements Method.
func (h *HighwayNet) Scores(g *hin.Graph, rng *rand.Rand) (*vec.Matrix, error) {
	features := g.FeatureMatrix()
	if len(features) == 0 || features[0] == nil {
		return nil, fmt.Errorf("baselines: HN requires node features")
	}
	dim, q := len(features[0]), g.Q()
	hidden := h.Hidden
	if hidden <= 0 {
		hidden = 32
	}
	depth := h.Depth
	if depth <= 0 {
		depth = 2
	}
	layers := []nn.Layer{nn.NewDense(dim, hidden, nn.ReLU, rng)}
	if h.Dropout > 0 {
		layers = append(layers, nn.NewDropout(hidden, h.Dropout, rng))
	}
	for d := 0; d < depth; d++ {
		layers = append(layers, nn.NewHighway(hidden, rng))
	}
	layers = append(layers, nn.NewDense(hidden, q, nn.Linear, rng))
	net, err := nn.NewNetwork(layers...)
	if err != nil {
		return nil, err
	}
	trainIdx, trainLabels := trainingSet(g)
	if len(trainIdx) == 0 {
		return nil, fmt.Errorf("baselines: HN needs labelled nodes")
	}
	X := make([][]float64, len(trainIdx))
	for p, i := range trainIdx {
		X[p] = features[i]
	}
	cfg := nn.DefaultTrainConfig(rng.Int63())
	if h.Epochs > 0 {
		cfg.Epochs = h.Epochs
	}
	if _, err := net.Fit(X, trainLabels, cfg); err != nil {
		return nil, err
	}
	scores := vec.NewMatrix(g.N(), q)
	for i := 0; i < g.N(); i++ {
		copy(scores.Row(i), net.Probabilities(features[i]))
	}
	clampTraining(g, scores)
	return scores, nil
}
