package baselines

import (
	"math/rand"

	"tmark/internal/classify"
	"tmark/internal/hin"
	"tmark/internal/metapath"
	"tmark/internal/vec"
)

// Hcc is the meta-path based collective classifier of Kong et al. (2012):
// each link type contributes its own label-aggregate feature block, and
// two-hop meta paths (same type composed with itself) add a second block
// per type, so the learned classifier can weight link types — unlike ICA.
type Hcc struct {
	// Base trains the per-iteration classifier; nil defaults to logistic
	// regression.
	Base classify.Trainer
	// Rounds is the number of collective-inference iterations.
	Rounds int
	// TwoHop adds the type-squared meta paths (e.g. co-conference ∘
	// co-conference) as extra feature blocks.
	TwoHop bool
	// SelfTrain, when positive, enables the semi-supervised variant
	// (Hcc-ss): after every round this fraction of the most confident
	// unlabelled nodes joins the training set (semiICA).
	SelfTrain float64
}

// NewHcc returns the supervised variant used in the experiments.
func NewHcc() *Hcc { return &Hcc{Rounds: 10, TwoHop: true} }

// NewHccSS returns the semi-supervised Hcc-ss variant.
func NewHccSS() *Hcc { return &Hcc{Rounds: 10, TwoHop: true, SelfTrain: 0.1} }

// Name implements Method.
func (h *Hcc) Name() string {
	if h.SelfTrain > 0 {
		return "Hcc-ss"
	}
	return "Hcc"
}

// Scores implements Method.
func (h *Hcc) Scores(g *hin.Graph, rng *rand.Rand) (*vec.Matrix, error) {
	base := h.Base
	if base == nil {
		base = classify.NewLogistic(rng.Int63())
	}
	rounds := h.Rounds
	if rounds <= 0 {
		rounds = 10
	}
	groups := make([][][]int, 0, 2*g.M())
	for _, lists := range g.NeighborLists() {
		groups = append(groups, lists)
	}
	if h.TwoHop {
		// The type-squared meta paths (k∘k) are the 2-hop feature blocks of
		// Kong et al.'s strongest configuration.
		for k := 0; k < g.M(); k++ {
			groups = append(groups, metapath.Reach(g, metapath.NewPath(k, k)))
		}
	}
	return runICA(g, groups, base, rounds, h.SelfTrain)
}
