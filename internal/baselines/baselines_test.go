package baselines

import (
	"math/rand"
	"testing"

	"tmark/internal/eval"
	"tmark/internal/hin"
	"tmark/internal/vec"
)

// homophilousGraph builds a 2-relation, 3-class network where the first
// relation strongly connects same-class nodes, the second is noise, and
// content features carry a class signal. Every sensible method should beat
// chance (1/3) comfortably.
func homophilousGraph(rng *rand.Rand, n int) *hin.Graph {
	g := hin.New("a", "b", "c")
	q := 3
	dim := 9
	for i := 0; i < n; i++ {
		c := i % q
		f := make([]float64, dim)
		for w := 0; w < 6; w++ {
			if rng.Float64() < 0.75 {
				f[c*3+rng.Intn(3)]++
			} else {
				f[rng.Intn(dim)]++
			}
		}
		g.AddNode("", f)
	}
	good := g.AddRelation("good", false)
	noise := g.AddRelation("noise", false)
	for i := 0; i < n; i++ {
		for e := 0; e < 3; e++ {
			j := rng.Intn(n)
			if j != i && j%q == i%q {
				g.AddEdge(good, i, j)
			}
		}
		if rng.Float64() < 0.5 {
			j := rng.Intn(n)
			if j != i {
				g.AddEdge(noise, i, j)
			}
		}
	}
	return g
}

// maskedProblem returns a training-masked copy plus the ground truth and
// test mask.
func maskedProblem(rng *rand.Rand, n int, frac float64) (*hin.Graph, []int, []bool) {
	full := homophilousGraph(rng, n)
	for i := 0; i < n; i++ {
		full.SetLabels(i, i%3)
	}
	split := eval.StratifiedSplit(full, frac, rng)
	masked, truth := eval.MaskLabels(full, split)
	return masked, eval.PrimaryTruth(truth), split.Test
}

func TestAllMethodsBeatChance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g, truth, testMask := maskedProblem(rng, 120, 0.4)
	for _, m := range All() {
		mrng := rand.New(rand.NewSource(99))
		scores, err := m.Scores(g, mrng)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if scores.Rows != g.N() || scores.Cols != g.Q() {
			t.Fatalf("%s: scores shape %dx%d", m.Name(), scores.Rows, scores.Cols)
		}
		acc := eval.Accuracy(Predict(scores), truth, testMask)
		if acc < 0.5 {
			t.Errorf("%s: test accuracy %.3f, want > 0.5 (chance is 0.33)", m.Name(), acc)
		}
	}
}

func TestScoresRowsAreDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g, _, _ := maskedProblem(rng, 60, 0.3)
	for _, m := range All() {
		mrng := rand.New(rand.NewSource(7))
		scores, err := m.Scores(g, mrng)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for i := 0; i < scores.Rows; i++ {
			if !vec.IsStochastic(scores.Row(i), 1e-6) {
				t.Errorf("%s: row %d not a distribution: %v", m.Name(), i, scores.Row(i))
			}
		}
	}
}

func TestTrainingNodesClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g, truth, _ := maskedProblem(rng, 60, 0.3)
	for _, m := range All() {
		mrng := rand.New(rand.NewSource(3))
		scores, err := m.Scores(g, mrng)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		pred := Predict(scores)
		for i := 0; i < g.N(); i++ {
			if g.Labeled(i) && pred[i] != truth[i] {
				t.Errorf("%s: training node %d predicted %d, truth %d", m.Name(), i, pred[i], truth[i])
			}
		}
	}
}

func TestMethodsDeterministicGivenRNG(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g, _, _ := maskedProblem(rng, 50, 0.4)
	for _, m := range []Method{NewICA(), NewHcc(), NewWVRN(), NewTMark()} {
		s1, err := m.Scores(g, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		s2, err := m.Scores(g, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for i := range s1.Data {
			if s1.Data[i] != s2.Data[i] {
				t.Fatalf("%s: not deterministic at %d", m.Name(), i)
			}
		}
	}
}

func TestPredictMulti(t *testing.T) {
	scores := vec.FromRows([][]float64{
		{0.5, 0.45, 0.05},
		{1, 0, 0},
	})
	multi := PredictMulti(scores, 0.8)
	if len(multi[0]) != 2 {
		t.Errorf("node 0 multi-labels = %v, want two", multi[0])
	}
	if len(multi[1]) != 1 || multi[1][0] != 0 {
		t.Errorf("node 1 multi-labels = %v, want [0]", multi[1])
	}
}

func TestHccNames(t *testing.T) {
	if NewHcc().Name() != "Hcc" || NewHccSS().Name() != "Hcc-ss" {
		t.Errorf("Hcc names wrong")
	}
	if NewTMark().Name() != "T-Mark" || NewTensorRrCc().Name() != "TensorRrCc" {
		t.Errorf("T-Mark names wrong")
	}
}

func TestMethodsRequireLabels(t *testing.T) {
	g := hin.New("a")
	g.AddNode("", []float64{1})
	g.AddNode("", []float64{1})
	g.AddRelation("r", false)
	g.AddEdge(0, 0, 1)
	for _, m := range []Method{NewICA(), NewHighwayNet(), NewGraphInception(), NewTMark()} {
		if _, err := m.Scores(g, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("%s: unlabelled graph should error", m.Name())
		}
	}
}

func TestHccTwoHopFeatureBlocks(t *testing.T) {
	// With TwoHop enabled, Hcc doubles its feature groups (one meta-path
	// block per link type); both variants must classify the homophilous
	// problem well.
	rng := rand.New(rand.NewSource(53))
	g, truth, testMask := maskedProblem(rng, 90, 0.4)
	for _, cfg := range []*Hcc{
		{Rounds: 5, TwoHop: false},
		{Rounds: 5, TwoHop: true},
	} {
		scores, err := cfg.Scores(g, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatalf("TwoHop=%v: %v", cfg.TwoHop, err)
		}
		if acc := eval.Accuracy(Predict(scores), truth, testMask); acc < 0.5 {
			t.Errorf("TwoHop=%v: accuracy %.3f too low", cfg.TwoHop, acc)
		}
	}
}

func TestContentNeighbors(t *testing.T) {
	feats := [][]float64{{1, 0}, {1, 0.1}, {0, 1}}
	ns := contentNeighbors(feats, 1)
	if len(ns[0]) != 1 || ns[0][0].to != 1 {
		t.Errorf("node 0 content neighbour = %v, want node 1", ns[0])
	}
	// Empty feature matrix is tolerated.
	if got := contentNeighbors(nil, 3); len(got) != 0 {
		t.Errorf("nil features should give empty result")
	}
}

func TestClassPriorSmoothing(t *testing.T) {
	g := hin.New("a", "b")
	g.AddNode("", nil)
	g.SetLabels(0, 0)
	prior := classPrior(g)
	if prior[1] <= 0 {
		t.Errorf("unseen class must keep nonzero prior, got %v", prior)
	}
	if !vec.IsStochastic(prior, 1e-12) {
		t.Errorf("prior must be a distribution: %v", prior)
	}
}
