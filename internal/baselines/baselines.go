// Package baselines implements the seven comparison methods of the paper's
// evaluation: ICA, Hcc, Hcc-ss, wvRN+RL, EMR, Highway Network and Graph
// Inception, plus an adapter exposing T-Mark/TensorRrCc through the same
// interface so experiments can sweep every method uniformly.
//
// A Method consumes a masked graph (labels present only on training nodes)
// and returns an n×q score matrix; argmax of a row is the predicted class,
// thresholding a row yields multi-label predictions.
package baselines

import (
	"math/rand"

	"tmark/internal/hin"
	"tmark/internal/vec"
)

// Method is a node-classification algorithm under evaluation.
type Method interface {
	// Name identifies the method in tables.
	Name() string
	// Scores returns an n×q matrix of class scores; every row of a
	// well-formed result is a probability distribution. Training labels are
	// the labelled nodes of g; scores must cover all nodes.
	Scores(g *hin.Graph, rng *rand.Rand) (*vec.Matrix, error)
}

// Predict reduces a score matrix to per-node argmax classes.
func Predict(scores *vec.Matrix) []int {
	pred := make([]int, scores.Rows)
	for i := 0; i < scores.Rows; i++ {
		pred[i] = vec.Argmax(scores.Row(i))
	}
	return pred
}

// PredictMulti assigns every class whose score is at least share times the
// node's maximum score (share in (0,1]); every node keeps at least its
// argmax class.
func PredictMulti(scores *vec.Matrix, share float64) [][]int {
	out := make([][]int, scores.Rows)
	for i := 0; i < scores.Rows; i++ {
		row := scores.Row(i)
		best := vec.Argmax(row)
		if best < 0 {
			continue
		}
		threshold := share * row[best]
		var labels []int
		for c, v := range row {
			if v >= threshold && v > 0 {
				labels = append(labels, c)
			}
		}
		if labels == nil {
			labels = []int{best}
		}
		out[i] = labels
	}
	return out
}

// trainingSet extracts the labelled nodes' indices and primary labels.
func trainingSet(g *hin.Graph) (idx []int, labels []int) {
	for i := 0; i < g.N(); i++ {
		if g.Labeled(i) {
			idx = append(idx, i)
			labels = append(labels, g.PrimaryLabel(i))
		}
	}
	return idx, labels
}

// clampTraining overwrites the rows of labelled nodes with their one-hot
// (or uniform multi-hot) truth; collective methods keep training nodes
// fixed at their known labels.
func clampTraining(g *hin.Graph, scores *vec.Matrix) {
	for i := 0; i < g.N(); i++ {
		if !g.Labeled(i) {
			continue
		}
		row := scores.Row(i)
		vec.Fill(row, 0)
		labels := g.Nodes[i].Labels
		w := 1 / float64(len(labels))
		for _, c := range labels {
			row[c] = w
		}
	}
}

// classPrior returns the empirical label distribution of the training
// nodes, smoothed so no class has probability zero.
func classPrior(g *hin.Graph) vec.Vector {
	prior := vec.New(g.Q())
	for i := 0; i < g.N(); i++ {
		if g.Labeled(i) {
			labels := g.Nodes[i].Labels
			w := 1 / float64(len(labels))
			for _, c := range labels {
				prior[c] += w
			}
		}
	}
	for c := range prior {
		prior[c]++ // add-one smoothing
	}
	vec.Normalize1(prior)
	return prior
}
