package baselines

import (
	"fmt"
	"math/rand"

	"tmark/internal/hin"
	"tmark/internal/nn"
	"tmark/internal/vec"
)

// GraphInception reproduces the Graph Inception baseline (Xiong et al.,
// TKDE 2019): convolutional extraction of deep *relational* features for
// collective classification, with inception-style width. Per relation k
// and propagation depth p = 1..Depth it computes Â_k^p · Y — the training
// label distribution diffused through link type k — concatenates all
// propagated label blocks with the content features, and trains a
// two-layer network on top. Because the convolution inputs are training
// labels, the representation is starved when few labels exist and the
// many per-relation weights overfit, reproducing the method's weak
// low-label results in the paper.
type GraphInception struct {
	// Depth is the largest adjacency power in the inception mix.
	Depth int
	// Hidden is the width of the classification head.
	Hidden int
	// Epochs overrides the training epochs (0 = default).
	Epochs int
}

// NewGraphInception returns the configuration used in the experiments.
func NewGraphInception() *GraphInception { return &GraphInception{Depth: 2, Hidden: 32} }

// Name implements Method.
func (gi *GraphInception) Name() string { return "GI" }

// Scores implements Method.
func (gi *GraphInception) Scores(g *hin.Graph, rng *rand.Rand) (*vec.Matrix, error) {
	features := g.FeatureMatrix()
	if len(features) == 0 || features[0] == nil {
		return nil, fmt.Errorf("baselines: GI requires node features")
	}
	depth := gi.Depth
	if depth <= 0 {
		depth = 2
	}
	hidden := gi.Hidden
	if hidden <= 0 {
		hidden = 32
	}
	n, q, dim := g.N(), g.Q(), len(features[0])
	// The convolution inputs are the training labels (one-hot rows for
	// labelled nodes, zero elsewhere), diffused through each link type.
	labels := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, q)
		if g.Labeled(i) {
			w := 1 / float64(len(g.Nodes[i].Labels))
			for _, c := range g.Nodes[i].Labels {
				row[c] = w
			}
		}
		labels[i] = row
	}
	blocks := propagateBlocks(g, labels, depth)
	featDim := dim + q*len(blocks)
	combined := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, 0, featDim)
		row = append(row, features[i]...)
		for _, b := range blocks {
			row = append(row, b[i]...)
		}
		combined[i] = row
	}

	net, err := nn.NewNetwork(
		nn.NewDense(featDim, hidden, nn.ReLU, rng),
		nn.NewDense(hidden, q, nn.Linear, rng),
	)
	if err != nil {
		return nil, err
	}
	trainIdx, trainLabels := trainingSet(g)
	if len(trainIdx) == 0 {
		return nil, fmt.Errorf("baselines: GI needs labelled nodes")
	}
	X := make([][]float64, len(trainIdx))
	for p, i := range trainIdx {
		X[p] = combined[i]
	}
	cfg := nn.DefaultTrainConfig(rng.Int63())
	if gi.Epochs > 0 {
		cfg.Epochs = gi.Epochs
	}
	if _, err := net.Fit(X, trainLabels, cfg); err != nil {
		return nil, err
	}
	scores := vec.NewMatrix(n, q)
	for i := 0; i < n; i++ {
		copy(scores.Row(i), net.Probabilities(combined[i]))
	}
	clampTraining(g, scores)
	return scores, nil
}

// propagateBlocks returns, for every relation and power 1..depth, the
// given per-node rows propagated through the degree-normalised neighbour
// average of that relation.
func propagateBlocks(g *hin.Graph, rows [][]float64, depth int) [][][]float64 {
	n := g.N()
	dim := len(rows[0])
	var blocks [][][]float64
	for _, lists := range g.NeighborLists() {
		cur := rows
		for p := 0; p < depth; p++ {
			next := make([][]float64, n)
			for i := 0; i < n; i++ {
				row := make([]float64, dim)
				for _, nb := range lists[i] {
					vec.Axpy(1, cur[nb], row)
				}
				if len(lists[i]) > 0 {
					vec.Scale(1/float64(len(lists[i])), row)
				}
				next[i] = row
			}
			blocks = append(blocks, next)
			cur = next
		}
	}
	return blocks
}
