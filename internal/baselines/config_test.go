package baselines

import (
	"math/rand"
	"testing"

	"tmark/internal/classify"
	"tmark/internal/eval"
)

// Zero-value methods must self-correct their configuration.
func TestZeroValueConfigsRun(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g, truth, testMask := maskedProblem(rng, 60, 0.4)
	for _, m := range []Method{
		&ICA{},  // no base, no rounds
		&Hcc{},  // no rounds
		&WVRN{}, // no rounds, no damping
		&EMR{},  // no rounds
	} {
		scores, err := m.Scores(g, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatalf("%s zero value: %v", m.Name(), err)
		}
		if acc := eval.Accuracy(Predict(scores), truth, testMask); acc < 0.45 {
			t.Errorf("%s zero value accuracy %.3f too low", m.Name(), acc)
		}
	}
}

// The GBDT learner plugs into the collective engines as a base classifier.
func TestGBDTAsCollectiveBase(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	g, truth, testMask := maskedProblem(rng, 90, 0.4)
	ica := &ICA{Base: classify.NewGBDT(1), Rounds: 3}
	scores, err := ica.Scores(g, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if acc := eval.Accuracy(Predict(scores), truth, testMask); acc < 0.6 {
		t.Errorf("ICA+GBDT accuracy %.3f, want >= 0.6", acc)
	}
}

// wvRN without content links still works from structure alone.
func TestWVRNStructureOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	g, truth, testMask := maskedProblem(rng, 90, 0.4)
	w := &WVRN{Rounds: 20, ContentK: 0, Damping: 0.5}
	scores, err := w.Scores(g, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if acc := eval.Accuracy(Predict(scores), truth, testMask); acc < 0.5 {
		t.Errorf("structure-only wvRN accuracy %.3f, want >= 0.5", acc)
	}
}

// An isolated unlabelled node (no links, no similar content) falls back to
// the class prior rather than NaN.
func TestWVRNIsolatedNodeFallsBackToPrior(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	g, _, _ := maskedProblem(rng, 30, 0.5)
	isolated := g.AddNode("", make([]float64, 9)) // zero features, no links
	w := &WVRN{Rounds: 5, ContentK: 3, Damping: 0.5}
	scores, err := w.Scores(g, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	row := scores.Row(isolated)
	var sum float64
	for _, v := range row {
		if v < 0 {
			t.Fatalf("negative probability for isolated node: %v", row)
		}
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("isolated node row sums to %v", sum)
	}
}
