package tensor

import (
	"fmt"

	"tmark/internal/vec"
)

// maxUnfoldCells bounds the dense unfoldings; they exist for inspection and
// the paper's worked example, not for large networks.
const maxUnfoldCells = 1 << 24

// Unfold1 returns the 1-mode matricisation A₍₁₎ of size n × (n·m): column
// j + k·n holds the fibre a[·,j,k]. This is the layout of the worked
// example in Section 3.2 of the paper, where normalising each column of
// A₍₁₎ yields O.
func (t *Tensor) Unfold1() *vec.Matrix {
	t.mustBeFinalized("Unfold1")
	if cells := t.n * t.n * t.m; cells > maxUnfoldCells {
		panic(fmt.Sprintf("tensor: Unfold1 would materialise %d cells", cells))
	}
	u := vec.NewMatrix(t.n, t.n*t.m)
	t.Each(func(i, j, k int, v float64) {
		u.Set(i, j+k*t.n, v)
	})
	return u
}

// Unfold3 returns the 3-mode matricisation A₍₃₎ of size m × (n·n): column
// i + j·n holds the tube a[i,j,·]. Normalising each column of A₍₃₎ yields R.
func (t *Tensor) Unfold3() *vec.Matrix {
	t.mustBeFinalized("Unfold3")
	if cells := t.n * t.n * t.m; cells > maxUnfoldCells {
		panic(fmt.Sprintf("tensor: Unfold3 would materialise %d cells", cells))
	}
	u := vec.NewMatrix(t.m, t.n*t.n)
	t.Each(func(i, j, k int, v float64) {
		u.Set(k, i+j*t.n, v)
	})
	return u
}

// DenseApplyO is a reference implementation of O ×̄₁ x ×̄₃ z that loops over
// all n·n·m cells through At, including implicit dangling columns. It is
// quadratic and exists so tests and ablation benches can cross-check the
// sparse Apply.
func DenseApplyO(o *NodeTransition, x, z []float64) []float64 {
	dst := make([]float64, o.n)
	for i := 0; i < o.n; i++ {
		var s float64
		for j := 0; j < o.n; j++ {
			for k := 0; k < o.m; k++ {
				s += o.At(i, j, k) * x[j] * z[k]
			}
		}
		dst[i] = s
	}
	return dst
}

// DenseApplyR is the quadratic reference implementation of R ×̄₁ x ×̄₂ x.
func DenseApplyR(r *RelationTransition, x []float64) []float64 {
	dst := make([]float64, r.m)
	for k := 0; k < r.m; k++ {
		var s float64
		for i := 0; i < r.n; i++ {
			for j := 0; j < r.n; j++ {
				s += r.At(i, j, k) * x[i] * x[j]
			}
		}
		dst[k] = s
	}
	return dst
}
