package tensor

// Property tests for the stochastic invariants the solver's convergence
// proof (Theorem 1) rests on: whatever COO tensor is ingested, the
// normalised transitions O and R are stochastic along their contraction
// modes, and one blocked ApplyBatch step maps probability columns to
// probability columns. All properties run on both kernel paths (AVX2 and
// the scalar fallback) via runBothKernelPaths.

import (
	"math"
	"math/rand"
	"testing"
)

// propertyTensors draws a spread of random COO shapes: tall, tiny,
// single-relation, duplicate-heavy (Add sums duplicates), dense-ish and
// almost-empty (mostly dangling).
func propertyTensors(rng *rand.Rand) []*Tensor {
	shapes := []struct{ n, m, nnz int }{
		{40, 3, 500},
		{7, 1, 60},
		{25, 6, 25}, // mostly dangling columns/tubes
		{3, 2, 40},  // heavy duplicates over 18 cells
		{64, 4, 2000},
	}
	out := make([]*Tensor, 0, len(shapes)+1)
	for _, s := range shapes {
		out = append(out, randomTensor(rng, s.n, s.m, s.nnz))
	}
	empty := New(9, 2) // all dangling: every column/tube implicit uniform
	empty.Finalize()
	return append(out, empty)
}

// TestPropertyTransitionsStochastic: for random COO input, every column
// o[·,j,k] sums to 1 and every tube r[i,j,·] sums to 1 — the stored ones
// via the package self-checks, a sample of all (including implicit
// dangling) ones via At.
func TestPropertyTransitionsStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for ti, a := range propertyTensors(rng) {
		o := NewNodeTransition(a)
		r := NewRelationTransition(a)
		if !o.ColumnsStochastic(1e-12) {
			t.Errorf("tensor %d: O has a stored column not summing to 1", ti)
		}
		if !r.TubesStochastic(1e-12) {
			t.Errorf("tensor %d: R has a stored tube not summing to 1", ti)
		}
		n, m := o.N(), o.M()
		for trial := 0; trial < 20; trial++ {
			j, k := rng.Intn(n), rng.Intn(m)
			sum := 0.0
			for i := 0; i < n; i++ {
				v := o.At(i, j, k)
				if v < 0 {
					t.Fatalf("tensor %d: o[%d,%d,%d] = %v < 0", ti, i, j, k, v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Errorf("tensor %d: column (%d,%d) of O sums to %v", ti, j, k, sum)
			}
			i, j2 := rng.Intn(n), rng.Intn(n)
			sum = 0.0
			for k := 0; k < m; k++ {
				v := r.At(i, j2, k)
				if v < 0 {
					t.Fatalf("tensor %d: r[%d,%d,%d] = %v < 0", ti, i, j2, k, v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Errorf("tensor %d: tube (%d,%d) of R sums to %v", ti, i, j2, sum)
			}
		}
	}
}

// TestPropertyApplyBatchPreservesSimplex: one blocked step keeps every
// column on the probability simplex — non-negative entries summing to 1
// within float tolerance — for the node contraction (O ×̄₁ X ×̄₃ Z) and
// the relation contraction (R ×̄₁ X ×̄₂ X) alike, at the ASM widths
// (4, 8) and off-width fallbacks, on both kernel paths.
func TestPropertyApplyBatchPreservesSimplex(t *testing.T) {
	runBothKernelPaths(t, testPropertyApplyBatchPreservesSimplex)
}

func testPropertyApplyBatchPreservesSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for ti, a := range propertyTensors(rng) {
		o := NewNodeTransition(a)
		r := NewRelationTransition(a)
		n, m := o.N(), o.M()
		if n == 0 {
			continue
		}
		for _, b := range []int{1, 3, 4, 8} {
			x := randomBlock(rng, n, b)
			z := randomBlock(rng, m, b)
			dstX := make([]float64, n*b)
			dstZ := make([]float64, m*b)
			o.ApplyBatch(NewNodeBatchScratch(o, 1, b), x, z, dstX, b)
			r.ApplyBatch(NewRelationBatchScratch(r, 1, b), x, dstZ, b)
			for c := 0; c < b; c++ {
				checkSimplex(t, "O", ti, b, c, column(dstX, n, b, c))
				checkSimplex(t, "R", ti, b, c, column(dstZ, m, b, c))
			}
		}
	}
}

func checkSimplex(t *testing.T, kernel string, ti, b, c int, col []float64) {
	t.Helper()
	sum := 0.0
	for i, v := range col {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("tensor %d, %s width %d, column %d: entry %d = %v", ti, kernel, b, c, i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("tensor %d, %s width %d, column %d: mass %v, want 1", ti, kernel, b, c, sum)
	}
}

// TestPropertyApplyBatchFixedPointMass iterates the coupled pair of
// contractions a few steps — the raw eq. (8)/(10) loop without restart
// or features — and checks the simplex survives composition, not just a
// single step (accumulated drift would break the solver's residual
// semantics).
func TestPropertyApplyBatchFixedPointMass(t *testing.T) {
	runBothKernelPaths(t, testPropertyApplyBatchFixedPointMass)
}

func testPropertyApplyBatchFixedPointMass(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := randomTensor(rng, 30, 3, 400)
	o := NewNodeTransition(a)
	r := NewRelationTransition(a)
	const b = 8
	n, m := o.N(), o.M()
	so := NewNodeBatchScratch(o, 1, b)
	sr := NewRelationBatchScratch(r, 1, b)
	x, z := randomBlock(rng, n, b), randomBlock(rng, m, b)
	xn, zn := make([]float64, n*b), make([]float64, m*b)
	for step := 0; step < 10; step++ {
		o.ApplyBatch(so, x, z, xn, b)
		r.ApplyBatch(sr, x, zn, b)
		x, xn = xn, x
		z, zn = zn, z
		for c := 0; c < b; c++ {
			checkSimplex(t, "O∘R", step, b, c, column(x, n, b, c))
			checkSimplex(t, "R∘O", step, b, c, column(z, m, b, c))
		}
	}
}
