package tensor

// Cross-process sharding entry points for the blocked contractions: the
// horizontal scale-out layer (internal/shard) runs the per-shard scatter
// phase of ApplyBatchParallel in worker processes and the reduce phase
// at the coordinator. The bitwise contract extends across the process
// boundary: shard boundaries are exactly the par.Split ranges of the
// in-process parallel path (they depend only on the tensor and the
// shard count, never on the column count b), each worker computes its
// partial serially in entry order, and the coordinator folds partials
// in ascending shard order with the same dangling-mass closed form —
// so a distributed apply at M workers is bitwise identical to
// ApplyBatchParallel on an M-worker pool, which in turn is bitwise
// identical per column to the single-vector parallel path.

import (
	"fmt"

	"tmark/internal/par"
)

// NodeShard is the shard-local slice of a NodeTransition: the entry and
// stored-column ranges shard s of `of` owns, plus the node/relation row
// ranges it sums for the dangling-mass closed form. The index slices
// keep their global meaning (they index the full n×b and m×b blocks),
// so a worker holding only its shard still consumes the full (x, z)
// slabs the coordinator ships.
type NodeShard struct {
	// N, M are the full tensor's dimensions (nodes, link types).
	N, M int
	// Shard, Of identify this shard's position.
	Shard, Of int
	// XLo/XHi and ZLo/ZHi are this shard's par.Split row ranges over
	// the x (n×b) and z (m×b) blocks for the partial column sums.
	XLo, XHi int
	ZLo, ZHi int
	// I, J, K, P are this shard's par.Split slice of the entry stream,
	// in the global (k, j, i) sort order.
	I, J, K []int32
	P       []float64
	// ColJ, ColK are this shard's par.Split slice of the stored-column
	// pair list.
	ColJ, ColK []int32
}

// Shard returns shard s of `of` of the node tensor, slicing the entry
// stream, the stored-column list and the sum row ranges at exactly the
// par.Split boundaries nodeBatchTask.RunShard uses.
func (o *NodeTransition) Shard(s, of int) NodeShard {
	sh := NodeShard{N: o.n, M: o.m, Shard: s, Of: of}
	sh.XLo, sh.XHi = par.Split(o.n, of, s)
	sh.ZLo, sh.ZHi = par.Split(o.m, of, s)
	lo, hi := par.Split(len(o.p), of, s)
	sh.I, sh.J, sh.K, sh.P = o.i[lo:hi], o.j[lo:hi], o.k[lo:hi], o.p[lo:hi]
	lo, hi = par.Split(len(o.colJ), of, s)
	sh.ColJ, sh.ColK = o.colJ[lo:hi], o.colK[lo:hi]
	return sh
}

// Validate checks a shard's structural invariants: dimensions, range
// sanity against the par.Split boundaries, equal-length entry arrays,
// in-range indices and finite weights. Decoded shards (which, unlike
// Shard's products, come from disk) must pass here before a worker
// serves them.
func (sh *NodeShard) Validate() error {
	if sh.N < 0 || sh.M < 0 || sh.Of < 1 || sh.Shard < 0 || sh.Shard >= sh.Of {
		return fmt.Errorf("tensor: node shard %d/%d over %dx%d malformed", sh.Shard, sh.Of, sh.N, sh.M)
	}
	if lo, hi := par.Split(sh.N, sh.Of, sh.Shard); lo != sh.XLo || hi != sh.XHi {
		return fmt.Errorf("tensor: node shard %d/%d x range [%d,%d), want [%d,%d)", sh.Shard, sh.Of, sh.XLo, sh.XHi, lo, hi)
	}
	if lo, hi := par.Split(sh.M, sh.Of, sh.Shard); lo != sh.ZLo || hi != sh.ZHi {
		return fmt.Errorf("tensor: node shard %d/%d z range [%d,%d), want [%d,%d)", sh.Shard, sh.Of, sh.ZLo, sh.ZHi, lo, hi)
	}
	if len(sh.I) != len(sh.J) || len(sh.I) != len(sh.K) || len(sh.I) != len(sh.P) {
		return fmt.Errorf("tensor: node shard entry arrays disagree: %d/%d/%d/%d", len(sh.I), len(sh.J), len(sh.K), len(sh.P))
	}
	if len(sh.ColJ) != len(sh.ColK) {
		return fmt.Errorf("tensor: node shard column lists disagree: %d/%d", len(sh.ColJ), len(sh.ColK))
	}
	for q := range sh.I {
		if !inRange(sh.I[q], sh.N) || !inRange(sh.J[q], sh.N) || !inRange(sh.K[q], sh.M) {
			return fmt.Errorf("tensor: node shard entry %d index out of range", q)
		}
		if !finiteNonneg(sh.P[q]) {
			return fmt.Errorf("tensor: node shard entry %d weight %v invalid", q, sh.P[q])
		}
	}
	for t := range sh.ColJ {
		if !inRange(sh.ColJ[t], sh.N) || !inRange(sh.ColK[t], sh.M) {
			return fmt.Errorf("tensor: node shard stored column %d out of range", t)
		}
	}
	return nil
}

// ApplyPartial runs this shard's scatter phase: the per-shard body of
// nodeBatchTask.RunShard, serially. part (N×b, fully overwritten) takes
// the shard's scattered contributions; sumX, sumZ and mass (each b,
// fully overwritten) take the shard's partial column sums and stored
// mass. x and z are the full n×b / m×b blocks. The worker must not
// sub-parallelise this call — serial entry order is what keeps the
// cross-process reduce bitwise identical to the in-process one.
func (sh *NodeShard) ApplyPartial(x, z, part []float64, b int, sumX, sumZ, mass []float64, noASM bool) {
	n := sh.N
	part = part[:n*b]
	for i := range part {
		part[i] = 0
	}
	sumX, sumZ, mass = sumX[:b], sumZ[:b], mass[:b]
	for c := 0; c < b; c++ {
		sumX[c], sumZ[c], mass[c] = 0, 0, 0
	}
	for i := sh.XLo; i < sh.XHi; i++ {
		row := x[i*b : i*b+b]
		for c, v := range row {
			sumX[c] += v
		}
	}
	for k := sh.ZLo; k < sh.ZHi; k++ {
		row := z[k*b : k*b+b]
		for c, v := range row {
			sumZ[c] += v
		}
	}
	asm := useBatchASM && !noASM
	pairMassBatch(x, z, sh.ColJ, sh.ColK, b, 0, len(sh.ColJ), mass, asm)
	cooScatterBatch(part, x, z, sh.I, sh.J, sh.K, sh.P, b, 0, len(sh.P), asm)
}

// RelationShard is the shard-local slice of a RelationTransition; see
// NodeShard. XLo/XHi is the row range over the x (n×b) block for the
// partial mode-1 sum.
type RelationShard struct {
	N, M      int
	Shard, Of int
	XLo, XHi  int
	// I, J, K, P are this shard's par.Split slice of the entry stream,
	// in the global (j, i, k) sort order.
	I, J, K []int32
	P       []float64
	// TubeI, TubeJ are this shard's par.Split slice of the stored-tube
	// pair list.
	TubeI, TubeJ []int32
}

// Shard returns shard s of `of` of the relation tensor at exactly the
// par.Split boundaries relationBatchTask.RunShard uses. The parallel
// path never fuses mass and scatter, so no tube offsets are needed.
func (r *RelationTransition) Shard(s, of int) RelationShard {
	sh := RelationShard{N: r.n, M: r.m, Shard: s, Of: of}
	sh.XLo, sh.XHi = par.Split(r.n, of, s)
	lo, hi := par.Split(len(r.p), of, s)
	sh.I, sh.J, sh.K, sh.P = r.i[lo:hi], r.j[lo:hi], r.k[lo:hi], r.p[lo:hi]
	lo, hi = par.Split(len(r.tubeI), of, s)
	sh.TubeI, sh.TubeJ = r.tubeI[lo:hi], r.tubeJ[lo:hi]
	return sh
}

// Validate checks a decoded relation shard; see NodeShard.Validate.
func (sh *RelationShard) Validate() error {
	if sh.N < 0 || sh.M < 0 || sh.Of < 1 || sh.Shard < 0 || sh.Shard >= sh.Of {
		return fmt.Errorf("tensor: relation shard %d/%d over %dx%d malformed", sh.Shard, sh.Of, sh.N, sh.M)
	}
	if lo, hi := par.Split(sh.N, sh.Of, sh.Shard); lo != sh.XLo || hi != sh.XHi {
		return fmt.Errorf("tensor: relation shard %d/%d x range [%d,%d), want [%d,%d)", sh.Shard, sh.Of, sh.XLo, sh.XHi, lo, hi)
	}
	if len(sh.I) != len(sh.J) || len(sh.I) != len(sh.K) || len(sh.I) != len(sh.P) {
		return fmt.Errorf("tensor: relation shard entry arrays disagree: %d/%d/%d/%d", len(sh.I), len(sh.J), len(sh.K), len(sh.P))
	}
	if len(sh.TubeI) != len(sh.TubeJ) {
		return fmt.Errorf("tensor: relation shard tube lists disagree: %d/%d", len(sh.TubeI), len(sh.TubeJ))
	}
	for q := range sh.I {
		if !inRange(sh.I[q], sh.N) || !inRange(sh.J[q], sh.N) || !inRange(sh.K[q], sh.M) {
			return fmt.Errorf("tensor: relation shard entry %d index out of range", q)
		}
		if !finiteNonneg(sh.P[q]) {
			return fmt.Errorf("tensor: relation shard entry %d weight %v invalid", q, sh.P[q])
		}
	}
	for t := range sh.TubeI {
		if !inRange(sh.TubeI[t], sh.N) || !inRange(sh.TubeJ[t], sh.N) {
			return fmt.Errorf("tensor: relation shard stored tube %d out of range", t)
		}
	}
	return nil
}

// ApplyPartial runs this shard's scatter phase: the serial body of
// relationBatchTask.RunShard. part is M×b (fully overwritten); sumI and
// mass are b each; x is the full n×b block.
func (sh *RelationShard) ApplyPartial(x, part []float64, b int, sumI, mass []float64, noASM bool) {
	m := sh.M
	part = part[:m*b]
	for i := range part {
		part[i] = 0
	}
	sumI, mass = sumI[:b], mass[:b]
	for c := 0; c < b; c++ {
		sumI[c], mass[c] = 0, 0
	}
	for i := sh.XLo; i < sh.XHi; i++ {
		row := x[i*b : i*b+b]
		for c, v := range row {
			sumI[c] += v
		}
	}
	asm := useBatchASM && !noASM
	pairMassBatch(x, x, sh.TubeI, sh.TubeJ, b, 0, len(sh.TubeI), mass, asm)
	cooScatterBatch(part, x, x, sh.K, sh.I, sh.J, sh.P, b, 0, len(sh.P), asm)
}

// ReduceNodePartials folds the per-shard partials of a distributed node
// contraction into dst (n×b), mirroring ApplyBatchParallel's reduce:
// per column, the partial sums fold in ascending shard order into the
// dangling-mass closed form (same `> 1e-15` guard), then every cell
// accumulates u[c] first and the shard partials in ascending order.
// parts, sumX, sumZ and mass are indexed by shard; u is b-column
// scratch. The result is bitwise identical to ApplyBatchParallel on a
// pool of len(parts) workers.
func ReduceNodePartials(dst, u []float64, n, b int, parts, sumX, sumZ, mass [][]float64) {
	shards := len(parts)
	u = u[:b]
	for c := 0; c < b; c++ {
		var sx, sz, stored float64
		for w := 0; w < shards; w++ {
			sx += sumX[w][c]
			sz += sumZ[w][c]
			stored += mass[w][c]
		}
		if dangling := sx*sz - stored; dangling > 1e-15 && n > 0 {
			u[c] = dangling / float64(n)
		} else {
			u[c] = 0
		}
	}
	dst = dst[:n*b]
	for i := 0; i < n; i++ {
		row := i * b
		for c := 0; c < b; c++ {
			acc := u[c]
			for w := 0; w < shards; w++ {
				acc += parts[w][row+c]
			}
			dst[row+c] = acc
		}
	}
}

// ReduceRelationPartials folds the per-shard partials of a distributed
// relation contraction into dst (m×b), mirroring the serial reduce in
// RelationTransition.ApplyBatchParallel.
func ReduceRelationPartials(dst, u []float64, m, b int, parts, sumI, mass [][]float64) {
	shards := len(parts)
	u = u[:b]
	for c := 0; c < b; c++ {
		var si, stored float64
		for w := 0; w < shards; w++ {
			si += sumI[w][c]
			stored += mass[w][c]
		}
		if dangling := si*si - stored; dangling > 1e-15 && m > 0 {
			u[c] = dangling / float64(m)
		} else {
			u[c] = 0
		}
	}
	dst = dst[:m*b]
	for k := 0; k < m; k++ {
		row := k * b
		for c := 0; c < b; c++ {
			acc := u[c]
			for w := 0; w < shards; w++ {
				acc += parts[w][row+c]
			}
			dst[row+c] = acc
		}
	}
}

func inRange(i int32, n int) bool { return i >= 0 && int(i) < n }
