package tensor

import "fmt"

// CollapseZ folds the relation mode of O against a fixed relation
// distribution zbar, producing the node-to-node transition matrix
//
//	P[i,j] = Σ_k o[i,j,k]·zbar[k]
//
// of the linearized T-Mark update x' = (1−α−β)·P·x + β·W·x + α·l (the
// approximate tier freezes z at zbar instead of re-coupling it through
// eq. (8) every iteration). The stored entries are returned as COO
// triplets in (j, i) column-grouped order; the implicit dangling columns
// of O contribute uniformly and are summarised per source node instead
// of materialised: dangle[j] = Σ_(k: column (j,k) dangling) zbar[k], so
// a matvec adds (Σ_j dangle[j]·x[j])/n to every entry of the result.
//
// When zbar is a distribution, every column of the collapsed operator
// is again stochastic: Σ_i P[i,j] + dangle[j] = Σ_k zbar[k] = 1, since
// each stored (j,k) column of O sums to one.
func (o *NodeTransition) CollapseZ(zbar []float64) (rows, cols []int32, vals []float64, dangle []float64) {
	if len(zbar) != o.m {
		panic(fmt.Sprintf("tensor: CollapseZ zbar length %d, want %d", len(zbar), o.m))
	}
	var zSum float64
	for _, v := range zbar {
		zSum += v
	}
	dangle = make([]float64, o.n)
	for j := range dangle {
		dangle[j] = zSum
	}
	// Entries are sorted by (k, j, i): for a fixed k each (j, k) column is
	// a contiguous run, so one pass accumulates P and the per-j stored
	// column weights. Different k values revisit the same (i, j) pair, so
	// the triplets carry duplicates — the caller's sparse builder
	// (sparse.FromTriplets) sums them.
	for q, cj := range o.colJ {
		dangle[cj] -= zbar[o.colK[q]]
	}
	rows = make([]int32, 0, len(o.p))
	cols = make([]int32, 0, len(o.p))
	vals = make([]float64, 0, len(o.p))
	for q, pi := range o.i {
		w := o.p[q] * zbar[o.k[q]]
		if w == 0 {
			continue
		}
		rows = append(rows, pi)
		cols = append(cols, o.j[q])
		vals = append(vals, w)
	}
	// Accumulated rounding can push a fully covered source node's dangling
	// weight a hair negative; clamp so the collapsed operator never
	// subtracts mass.
	for j := range dangle {
		if dangle[j] < 0 {
			dangle[j] = 0
		}
	}
	return rows, cols, vals, dangle
}
