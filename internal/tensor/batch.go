package tensor

// Blocked (multi-class) variants of the transition-tensor contractions:
// the SpMV → SpMM upgrade of the batched solver. The per-class node
// distributions are interleaved into one node-major block X (entry
// (i, c) at i*b+c for b active classes) and each COO entry is streamed
// once per iteration, applying to every class column — the kernels are
// memory-bandwidth-bound, so the b-fold reuse of each loaded entry is
// where the batched solver's speedup comes from.
//
// Bitwise contract: column c of a batched result equals the
// single-vector kernel run on column c alone, path by path. The serial
// ApplyBatch visits entries, stored columns/tubes and nodes in exactly
// the order of the serial Apply; the parallel ApplyBatchParallel reuses
// the single-vector shard boundaries (par.Split over entry, node and
// stored-column counts — all independent of b) and reduces per-worker
// partials in worker order, like ApplyParallel. The dangling-mass closed
// form keeps its per-column `> 1e-15` guard, and columns without
// dangling mass skip the uniform add entirely, so no column ever sees an
// extra floating-point operation relative to its single-vector run.

import (
	"fmt"
	"sync"

	"tmark/internal/fault"
	"tmark/internal/obs"
	"tmark/internal/par"
)

// NodeBatchScratch holds the buffers of the blocked NodeTransition
// contraction: per-shard column sums and stored-column mass, the
// per-column dangling addend, and (for the parallel path) per-worker
// partial blocks. Build one per solver run with NewNodeBatchScratch and
// reuse it; steady-state ApplyBatch / ApplyBatchParallel calls then
// allocate nothing. A scratch must not be shared by concurrent calls.
type NodeBatchScratch struct {
	shards  int
	maxCols int
	// partials is shards × n × maxCols, worker-major: worker w owns
	// [w·n·maxCols, (w+1)·n·maxCols) and addresses cell (i, c) of a
	// b-column call at offset i·b+c within its block. Nil when the
	// scratch was built for one shard (serial-only use).
	partials []float64
	sumX     []float64 // shards × maxCols per-shard column sums of x
	sumZ     []float64 // shards × maxCols per-shard column sums of z
	mass     []float64 // shards × maxCols per-shard stored-column mass
	u        []float64 // maxCols per-column dangling addend
	task     nodeBatchTask
	wg       sync.WaitGroup

	// Probe, when non-nil, counts ApplyBatchParallel calls, the stored
	// entries they stream, and the class columns they apply them to.
	Probe *obs.Probe

	// NoASM demotes this scratch's contractions to the scalar reference
	// bodies even when the host supports the AVX2 kernels. The solver's
	// numerical-fault retry sets it: after a fault in the vectorised
	// path, the retry re-runs on the scalar bodies so a miscompiled or
	// misbehaving assembly kernel cannot poison the answer twice.
	NoASM bool
}

// NewNodeBatchScratch sizes batch scratch for o with the given shard
// count and maximum column count. shards < 1 is treated as 1; the
// per-worker partial blocks are only allocated when shards > 1.
func NewNodeBatchScratch(o *NodeTransition, shards, maxCols int) *NodeBatchScratch {
	if shards < 1 {
		shards = 1
	}
	if maxCols < 1 {
		maxCols = 1
	}
	s := &NodeBatchScratch{
		shards:  shards,
		maxCols: maxCols,
		sumX:    make([]float64, shards*maxCols),
		sumZ:    make([]float64, shards*maxCols),
		mass:    make([]float64, shards*maxCols),
		u:       make([]float64, maxCols),
	}
	if shards > 1 {
		s.partials = make([]float64, shards*o.n*maxCols)
	}
	s.task.o = o
	s.task.s = s
	return s
}

func (s *NodeBatchScratch) checkCols(b int) {
	if s == nil {
		panic("tensor: ApplyBatch needs a NodeBatchScratch")
	}
	if b < 1 || b > s.maxCols {
		panic(fmt.Sprintf("tensor: ApplyBatch %d columns, scratch sized for %d", b, s.maxCols))
	}
}

// ApplyBatch computes the blocked contraction dst = O ×̄₁ X ×̄₃ Z for b
// interleaved class columns: x and dst are n×b blocks, z an m×b block
// (stride b), and dst must not alias x. Column c of dst is bitwise equal
// to Apply run on column c of x and z.
func (o *NodeTransition) ApplyBatch(s *NodeBatchScratch, x, z, dst []float64, b int) {
	s.checkCols(b)
	checkNodeBlocks(o, "ApplyBatch", len(x), len(z), len(dst), b)
	n := o.n
	dst = dst[:n*b]
	for q := range dst {
		dst[q] = 0
	}
	sumX, sumZ, mass, u := s.sumX[:b], s.sumZ[:b], s.mass[:b], s.u[:b]
	colSums(x[:n*b], b, sumX)
	colSums(z[:o.m*b], b, sumZ)
	for c := range mass {
		mass[c] = 0
	}
	asm := useBatchASM && !s.NoASM
	pairMassBatch(x, z, o.colJ, o.colK, b, 0, len(o.colJ), mass, asm)
	cooScatterBatch(dst, x, z, o.i, o.j, o.k, o.p, b, 0, len(o.p), asm)
	danglingAddends(sumX, sumZ, mass, u, n)
	addUniformCols(dst, u, b)
	if fault.Enabled() {
		fault.Fire(fault.TensorNodeBatch, dst, b)
	}
}

// fusedMassScatterBatch is the scalar serial relation-contraction core:
// one streaming pass over the entry runs. A run is one stored tube —
// contiguous in the sorted entry arrays, delimited by runStart, with its
// two operand rows fixed:
// run t loads a[runA[t]·b:] and bb[runB[t]·b:] once, folds them into the
// stored mass, and scatters the run's entries dst[di·b+c] += p·a_c·b_c.
// Bitwise contract: the runs appear in exactly the order of the pair
// lists, so mass[c] accumulates in the order of the single-vector
// stored-mass loop, and the entries appear in exactly their global sorted
// order, so every dst cell accumulates in the order of the single-vector
// scatter loop; mass and dst are disjoint accumulators, so interleaving
// the two passes changes no float. The parallel shard path cannot fuse —
// its par.Split boundaries over pairs and entries are independent and do
// not align with runs — so it keeps the split pairMassBatch +
// cooScatterBatch kernels.
func fusedMassScatterBatch(dst, a, bb []float64, runA, runB, runStart, di []int32, p []float64, cols int, mass []float64) {
	switch cols {
	case 1:
		m0 := mass[0]
		for t := range runA {
			a0 := a[runA[t]]
			b0 := bb[runB[t]]
			m0 += a0 * b0
			for q, end := int(runStart[t]), int(runStart[t+1]); q < end; q++ {
				dst[di[q]] += p[q] * a0 * b0
			}
		}
		mass[0] = m0
	case 2:
		m0, m1 := mass[0], mass[1]
		for t := range runA {
			av := (*[2]float64)(a[int(runA[t])*2:])
			bv := (*[2]float64)(bb[int(runB[t])*2:])
			a0, a1 := av[0], av[1]
			b0, b1 := bv[0], bv[1]
			m0 += a0 * b0
			m1 += a1 * b1
			for q, end := int(runStart[t]), int(runStart[t+1]); q < end; q++ {
				pv := p[q]
				d := (*[2]float64)(dst[int(di[q])*2:])
				d[0] += pv * a0 * b0
				d[1] += pv * a1 * b1
			}
		}
		mass[0], mass[1] = m0, m1
	case 3:
		m0, m1, m2 := mass[0], mass[1], mass[2]
		for t := range runA {
			av := (*[3]float64)(a[int(runA[t])*3:])
			bv := (*[3]float64)(bb[int(runB[t])*3:])
			a0, a1, a2 := av[0], av[1], av[2]
			b0, b1, b2 := bv[0], bv[1], bv[2]
			m0 += a0 * b0
			m1 += a1 * b1
			m2 += a2 * b2
			for q, end := int(runStart[t]), int(runStart[t+1]); q < end; q++ {
				pv := p[q]
				d := (*[3]float64)(dst[int(di[q])*3:])
				d[0] += pv * a0 * b0
				d[1] += pv * a1 * b1
				d[2] += pv * a2 * b2
			}
		}
		mass[0], mass[1], mass[2] = m0, m1, m2
	case 4:
		m0, m1, m2, m3 := mass[0], mass[1], mass[2], mass[3]
		for t := range runA {
			av := (*[4]float64)(a[int(runA[t])*4:])
			bv := (*[4]float64)(bb[int(runB[t])*4:])
			a0, a1, a2, a3 := av[0], av[1], av[2], av[3]
			b0, b1, b2, b3 := bv[0], bv[1], bv[2], bv[3]
			m0 += a0 * b0
			m1 += a1 * b1
			m2 += a2 * b2
			m3 += a3 * b3
			for q, end := int(runStart[t]), int(runStart[t+1]); q < end; q++ {
				pv := p[q]
				d := (*[4]float64)(dst[int(di[q])*4:])
				d[0] += pv * a0 * b0
				d[1] += pv * a1 * b1
				d[2] += pv * a2 * b2
				d[3] += pv * a3 * b3
			}
		}
		mass[0], mass[1], mass[2], mass[3] = m0, m1, m2, m3
	case 8:
		for t := range runA {
			av := (*[8]float64)(a[int(runA[t])*8:])
			bv := (*[8]float64)(bb[int(runB[t])*8:])
			a0, a1, a2, a3 := av[0], av[1], av[2], av[3]
			a4, a5, a6, a7 := av[4], av[5], av[6], av[7]
			b0, b1, b2, b3 := bv[0], bv[1], bv[2], bv[3]
			b4, b5, b6, b7 := bv[4], bv[5], bv[6], bv[7]
			mass[0] += a0 * b0
			mass[1] += a1 * b1
			mass[2] += a2 * b2
			mass[3] += a3 * b3
			mass[4] += a4 * b4
			mass[5] += a5 * b5
			mass[6] += a6 * b6
			mass[7] += a7 * b7
			for q, end := int(runStart[t]), int(runStart[t+1]); q < end; q++ {
				pv := p[q]
				d := (*[8]float64)(dst[int(di[q])*8:])
				d[0] += pv * a0 * b0
				d[1] += pv * a1 * b1
				d[2] += pv * a2 * b2
				d[3] += pv * a3 * b3
				d[4] += pv * a4 * b4
				d[5] += pv * a5 * b5
				d[6] += pv * a6 * b6
				d[7] += pv * a7 * b7
			}
		}
	default:
		for t := range runA {
			ab := int(runA[t]) * cols
			bbase := int(runB[t]) * cols
			av := a[ab : ab+cols]
			bv := bb[bbase : bbase+cols]
			for c := range av {
				mass[c] += av[c] * bv[c]
			}
			for q, end := int(runStart[t]), int(runStart[t+1]); q < end; q++ {
				pv := p[q]
				db := int(di[q]) * cols
				d := dst[db : db+cols]
				for c := range d {
					d[c] += pv * av[c] * bv[c]
				}
			}
		}
	}
}

// cooScatterBatch is the shared blocked COO entry loop of both
// contractions: dst[d·b+c] += p[q]·a[ai·b+c]·bb[bi·b+c] for every stored
// entry q in [lo, hi) and every column c < b. The node contraction passes
// (i, j, k) as (d, ai, bi) with a = X, bb = Z; the relation contraction
// passes (k, i, j) with a = bb = X. This loop runs nnz·b multiply-adds
// per call — the solver's hot spot — so the common small column counts
// are specialised to fixed-width bodies (via slice-to-array-pointer
// views) that the compiler fully unrolls; each column's accumulation
// order is the entry order q in every variant, keeping the per-column
// bitwise contract.
// The entry arrays arrive sorted so that the bi index is constant over
// long contiguous runs (node: entries sorted by (k, j, i) keep z[k]
// fixed for a whole slab; relation: sorted by (j, i, k) keep x[j] fixed
// across a node's out-edges), so each specialised body caches that one
// operand row in locals and reloads it only when the index changes: the
// reload branch is almost never taken and predicts perfectly. The ai
// index changes nearly every entry, so its row is loaded directly — a
// run cache there would mispredict constantly and cost more than the
// loads it saves. Pure load elimination: no float's value or
// accumulation order changes.
// asm selects the AVX2 bodies for cols 4 and 8; callers pass
// useBatchASM gated on the scratch's NoASM demotion flag.
func cooScatterBatch(dst, a, bb []float64, di, ai, bi []int32, p []float64, cols, lo, hi int, asm bool) {
	if lo >= hi {
		return
	}
	switch cols {
	case 1:
		lastB := bi[lo]
		b0 := bb[lastB]
		for q := lo; q < hi; q++ {
			if v := bi[q]; v != lastB {
				lastB, b0 = v, bb[v]
			}
			dst[di[q]] += p[q] * a[ai[q]] * b0
		}
	case 2:
		lastB := bi[lo]
		bv := (*[2]float64)(bb[int(lastB)*2:])
		b0, b1 := bv[0], bv[1]
		for q := lo; q < hi; q++ {
			if v := bi[q]; v != lastB {
				lastB = v
				bv = (*[2]float64)(bb[int(v)*2:])
				b0, b1 = bv[0], bv[1]
			}
			pv := p[q]
			av := (*[2]float64)(a[int(ai[q])*2:])
			d := (*[2]float64)(dst[int(di[q])*2:])
			d[0] += pv * av[0] * b0
			d[1] += pv * av[1] * b1
		}
	case 3:
		lastB := bi[lo]
		bv := (*[3]float64)(bb[int(lastB)*3:])
		b0, b1, b2 := bv[0], bv[1], bv[2]
		for q := lo; q < hi; q++ {
			if v := bi[q]; v != lastB {
				lastB = v
				bv = (*[3]float64)(bb[int(v)*3:])
				b0, b1, b2 = bv[0], bv[1], bv[2]
			}
			pv := p[q]
			av := (*[3]float64)(a[int(ai[q])*3:])
			d := (*[3]float64)(dst[int(di[q])*3:])
			d[0] += pv * av[0] * b0
			d[1] += pv * av[1] * b1
			d[2] += pv * av[2] * b2
		}
	case 4:
		if asm {
			cooScatterAVX4(&dst[0], &a[0], &bb[0], &di[lo], &ai[lo], &bi[lo], &p[lo], hi-lo)
			return
		}
		lastB := bi[lo]
		bv := (*[4]float64)(bb[int(lastB)*4:])
		b0, b1, b2, b3 := bv[0], bv[1], bv[2], bv[3]
		for q := lo; q < hi; q++ {
			if v := bi[q]; v != lastB {
				lastB = v
				bv = (*[4]float64)(bb[int(v)*4:])
				b0, b1, b2, b3 = bv[0], bv[1], bv[2], bv[3]
			}
			pv := p[q]
			av := (*[4]float64)(a[int(ai[q])*4:])
			d := (*[4]float64)(dst[int(di[q])*4:])
			d[0] += pv * av[0] * b0
			d[1] += pv * av[1] * b1
			d[2] += pv * av[2] * b2
			d[3] += pv * av[3] * b3
		}
	case 8:
		if asm {
			cooScatterAVX8(&dst[0], &a[0], &bb[0], &di[lo], &ai[lo], &bi[lo], &p[lo], hi-lo)
			return
		}
		lastB := bi[lo]
		bv := (*[8]float64)(bb[int(lastB)*8:])
		for q := lo; q < hi; q++ {
			if v := bi[q]; v != lastB {
				lastB = v
				bv = (*[8]float64)(bb[int(v)*8:])
			}
			pv := p[q]
			av := (*[8]float64)(a[int(ai[q])*8:])
			d := (*[8]float64)(dst[int(di[q])*8:])
			d[0] += pv * av[0] * bv[0]
			d[1] += pv * av[1] * bv[1]
			d[2] += pv * av[2] * bv[2]
			d[3] += pv * av[3] * bv[3]
			d[4] += pv * av[4] * bv[4]
			d[5] += pv * av[5] * bv[5]
			d[6] += pv * av[6] * bv[6]
			d[7] += pv * av[7] * bv[7]
		}
	default:
		lastB := int32(-1)
		var bv []float64
		for q := lo; q < hi; q++ {
			if v := bi[q]; v != lastB {
				lastB = v
				bv = bb[int(v)*cols : int(v)*cols+cols]
			}
			pv := p[q]
			ab := int(ai[q]) * cols
			av := a[ab : ab+cols]
			db := int(di[q]) * cols
			d := dst[db : db+cols]
			for c := range d {
				d[c] += pv * av[c] * bv[c]
			}
		}
	}
}

// pairMassBatch accumulates mass[c] += a[ai·b+c]·bb[bi·b+c] over the
// index pairs in [lo, hi) — the stored-column (or stored-tube) mass of
// the dangling closed form — with the same fixed-width specialisation
// and per-column entry order as cooScatterBatch.
// The b-side index is nearly constant over the sorted pair lists (the
// node mass pairs sort by (k, j), the relation ones by (j, i)), so its
// row is cached in locals like cooScatterBatch's operands; the column
// accumulators live in locals too, added in the same q order per column.
func pairMassBatch(a, bb []float64, ai, bi []int32, cols, lo, hi int, mass []float64, asm bool) {
	if lo >= hi {
		return
	}
	switch cols {
	case 1:
		lastB := bi[lo]
		b0 := bb[lastB]
		m0 := mass[0]
		for q := lo; q < hi; q++ {
			if v := bi[q]; v != lastB {
				lastB, b0 = v, bb[v]
			}
			m0 += a[ai[q]] * b0
		}
		mass[0] = m0
	case 2:
		lastB := bi[lo]
		bv := (*[2]float64)(bb[int(lastB)*2:])
		b0, b1 := bv[0], bv[1]
		m0, m1 := mass[0], mass[1]
		for q := lo; q < hi; q++ {
			if v := bi[q]; v != lastB {
				lastB = v
				bv = (*[2]float64)(bb[int(v)*2:])
				b0, b1 = bv[0], bv[1]
			}
			av := (*[2]float64)(a[int(ai[q])*2:])
			m0 += av[0] * b0
			m1 += av[1] * b1
		}
		mass[0], mass[1] = m0, m1
	case 3:
		lastB := bi[lo]
		bv := (*[3]float64)(bb[int(lastB)*3:])
		b0, b1, b2 := bv[0], bv[1], bv[2]
		m0, m1, m2 := mass[0], mass[1], mass[2]
		for q := lo; q < hi; q++ {
			if v := bi[q]; v != lastB {
				lastB = v
				bv = (*[3]float64)(bb[int(v)*3:])
				b0, b1, b2 = bv[0], bv[1], bv[2]
			}
			av := (*[3]float64)(a[int(ai[q])*3:])
			m0 += av[0] * b0
			m1 += av[1] * b1
			m2 += av[2] * b2
		}
		mass[0], mass[1], mass[2] = m0, m1, m2
	case 4:
		if asm {
			pairMassAVX4(&a[0], &bb[0], &ai[lo], &bi[lo], hi-lo, &mass[0])
			return
		}
		lastB := bi[lo]
		bv := (*[4]float64)(bb[int(lastB)*4:])
		b0, b1, b2, b3 := bv[0], bv[1], bv[2], bv[3]
		m0, m1, m2, m3 := mass[0], mass[1], mass[2], mass[3]
		for q := lo; q < hi; q++ {
			if v := bi[q]; v != lastB {
				lastB = v
				bv = (*[4]float64)(bb[int(v)*4:])
				b0, b1, b2, b3 = bv[0], bv[1], bv[2], bv[3]
			}
			av := (*[4]float64)(a[int(ai[q])*4:])
			m0 += av[0] * b0
			m1 += av[1] * b1
			m2 += av[2] * b2
			m3 += av[3] * b3
		}
		mass[0], mass[1], mass[2], mass[3] = m0, m1, m2, m3
	case 8:
		if asm {
			pairMassAVX8(&a[0], &bb[0], &ai[lo], &bi[lo], hi-lo, &mass[0])
			return
		}
		lastB := bi[lo]
		bv := (*[8]float64)(bb[int(lastB)*8:])
		for q := lo; q < hi; q++ {
			if v := bi[q]; v != lastB {
				lastB = v
				bv = (*[8]float64)(bb[int(v)*8:])
			}
			av := (*[8]float64)(a[int(ai[q])*8:])
			mass[0] += av[0] * bv[0]
			mass[1] += av[1] * bv[1]
			mass[2] += av[2] * bv[2]
			mass[3] += av[3] * bv[3]
			mass[4] += av[4] * bv[4]
			mass[5] += av[5] * bv[5]
			mass[6] += av[6] * bv[6]
			mass[7] += av[7] * bv[7]
		}
	default:
		lastB := int32(-1)
		var bv []float64
		for q := lo; q < hi; q++ {
			if v := bi[q]; v != lastB {
				lastB = v
				bv = bb[int(v)*cols : int(v)*cols+cols]
			}
			ab := int(ai[q]) * cols
			av := a[ab : ab+cols]
			for c := range av {
				mass[c] += av[c] * bv[c]
			}
		}
	}
}

// colSums accumulates the per-column sums of an rows×b block into sum,
// visiting rows in ascending order like the single-vector sum loops.
func colSums(block []float64, b int, sum []float64) {
	for c := range sum {
		sum[c] = 0
	}
	for base := 0; base < len(block); base += b {
		row := block[base : base+b]
		for c, v := range row {
			sum[c] += v
		}
	}
}

// danglingAddends fills u with the per-column uniform addend of the
// dangling mass sumA[c]·sumB[c] − mass[c], keeping the single-vector
// `> 1e-15` guard per column.
func danglingAddends(sumA, sumB, mass, u []float64, dim int) {
	for c := range u {
		if dangling := sumA[c]*sumB[c] - mass[c]; dangling > 1e-15 && dim > 0 {
			u[c] = dangling / float64(dim)
		} else {
			u[c] = 0
		}
	}
}

// addUniformCols adds u[c] to every row of column c, skipping columns
// with no dangling mass so their floats are untouched — exactly the
// single-vector behaviour, where the uniform add runs only under the
// dangling guard.
func addUniformCols(dst []float64, u []float64, b int) {
	for c, uc := range u {
		if uc == 0 {
			continue
		}
		for p := c; p < len(dst); p += b {
			dst[p] += uc
		}
	}
}

// nodeBatchTask is the two-phase par.Task of ApplyBatchParallel,
// mirroring nodeApplyTask: a scatter phase contracting entry shards into
// per-worker partial blocks, then a strided reduction folding them into
// dst in worker order.
type nodeBatchTask struct {
	o      *NodeTransition
	s      *NodeBatchScratch
	x, z   []float64
	dst    []float64
	b      int
	reduce bool
}

func (t *nodeBatchTask) RunShard(shard, shards int) {
	o, s, b := t.o, t.s, t.b
	n := o.n
	wBase := shard * n * s.maxCols
	if t.reduce {
		lo, hi := par.Split(n, shards, shard)
		u := s.u[:b]
		for i := lo; i < hi; i++ {
			row := i * b
			for c := 0; c < b; c++ {
				acc := u[c]
				for w := 0; w < shards; w++ {
					acc += s.partials[w*n*s.maxCols+row+c]
				}
				t.dst[row+c] = acc
			}
		}
		return
	}
	part := s.partials[wBase : wBase+n*b]
	for i := range part {
		part[i] = 0
	}
	x, z := t.x, t.z
	sumX := s.sumX[shard*s.maxCols : shard*s.maxCols+b]
	sumZ := s.sumZ[shard*s.maxCols : shard*s.maxCols+b]
	mass := s.mass[shard*s.maxCols : shard*s.maxCols+b]
	for c := 0; c < b; c++ {
		sumX[c], sumZ[c], mass[c] = 0, 0, 0
	}
	lo, hi := par.Split(n, shards, shard)
	for i := lo; i < hi; i++ {
		row := x[i*b : i*b+b]
		for c, v := range row {
			sumX[c] += v
		}
	}
	lo, hi = par.Split(o.m, shards, shard)
	for k := lo; k < hi; k++ {
		row := z[k*b : k*b+b]
		for c, v := range row {
			sumZ[c] += v
		}
	}
	asm := useBatchASM && !s.NoASM
	lo, hi = par.Split(len(o.colJ), shards, shard)
	pairMassBatch(x, z, o.colJ, o.colK, b, lo, hi, mass, asm)
	lo, hi = par.Split(len(o.p), shards, shard)
	cooScatterBatch(part, x, z, o.i, o.j, o.k, o.p, b, lo, hi, asm)
}

// ApplyBatchParallel computes the blocked contraction like ApplyBatch
// with the entry shards spread across the pool. Shard boundaries are the
// single-vector ones (they depend only on the tensor and the shard
// count, never on b) and the per-worker partials reduce in worker order,
// so for a fixed worker count column c of the result is bitwise equal to
// ApplyParallel run on column c alone. A nil/serial pool or single-shard
// scratch falls back to the serial path.
func (o *NodeTransition) ApplyBatchParallel(p *par.Pool, s *NodeBatchScratch, x, z, dst []float64, b int) {
	if p.Serial() || s == nil || s.shards <= 1 {
		o.ApplyBatch(s, x, z, dst, b)
		return
	}
	s.checkCols(b)
	checkNodeBlocks(o, "ApplyBatchParallel", len(x), len(z), len(dst), b)
	s.Probe.ObserveCols(len(o.p), b)
	t := &s.task
	t.x, t.z, t.dst, t.b = x, z, dst[:o.n*b], b
	t.reduce = false
	p.Run(s.shards, t, &s.wg)
	u := s.u[:b]
	for c := 0; c < b; c++ {
		var sumX, sumZ, stored float64
		for w := 0; w < s.shards; w++ {
			sumX += s.sumX[w*s.maxCols+c]
			sumZ += s.sumZ[w*s.maxCols+c]
			stored += s.mass[w*s.maxCols+c]
		}
		if dangling := sumX*sumZ - stored; dangling > 1e-15 && o.n > 0 {
			u[c] = dangling / float64(o.n)
		} else {
			u[c] = 0
		}
	}
	t.reduce = true
	p.Run(s.shards, t, &s.wg)
	t.x, t.z, t.dst = nil, nil, nil
	if fault.Enabled() {
		fault.Fire(fault.TensorNodeBatch, dst[:o.n*b], b)
	}
}

func checkNodeBlocks(o *NodeTransition, op string, lx, lz, ldst, b int) {
	if lx < o.n*b || ldst < o.n*b {
		panic(fmt.Sprintf("tensor: NodeTransition.%s x/dst blocks %d/%d, want %d", op, lx, ldst, o.n*b))
	}
	if lz < o.m*b {
		panic(fmt.Sprintf("tensor: NodeTransition.%s z block %d, want %d", op, lz, o.m*b))
	}
}

// RelationBatchScratch holds the buffers of the blocked
// RelationTransition contraction; see NodeBatchScratch for the contract.
// As in the single-vector path, the small m-dimensional reduction runs
// serially in the caller.
type RelationBatchScratch struct {
	shards  int
	maxCols int
	// partials is shards × m × maxCols, worker-major; nil when built for
	// one shard.
	partials []float64
	sumI     []float64 // shards × maxCols per-shard column sums of x
	mass     []float64 // shards × maxCols per-shard stored-tube mass
	u        []float64 // maxCols per-column dangling addend
	task     relationBatchTask
	wg       sync.WaitGroup

	// Probe, when non-nil, counts ApplyBatchParallel calls, the stored
	// entries they stream, and the class columns they apply them to.
	Probe *obs.Probe

	// NoASM demotes this scratch's contractions to the scalar reference
	// bodies; see NodeBatchScratch.NoASM.
	NoASM bool
}

// NewRelationBatchScratch sizes batch scratch for r with the given shard
// count and maximum column count; shards < 1 is treated as 1.
func NewRelationBatchScratch(r *RelationTransition, shards, maxCols int) *RelationBatchScratch {
	if shards < 1 {
		shards = 1
	}
	if maxCols < 1 {
		maxCols = 1
	}
	s := &RelationBatchScratch{
		shards:  shards,
		maxCols: maxCols,
		sumI:    make([]float64, shards*maxCols),
		mass:    make([]float64, shards*maxCols),
		u:       make([]float64, maxCols),
	}
	if shards > 1 {
		s.partials = make([]float64, shards*r.m*maxCols)
	}
	s.task.r = r
	s.task.s = s
	return s
}

func (s *RelationBatchScratch) checkCols(b int) {
	if s == nil {
		panic("tensor: ApplyBatch needs a RelationBatchScratch")
	}
	if b < 1 || b > s.maxCols {
		panic(fmt.Sprintf("tensor: ApplyBatch %d columns, scratch sized for %d", b, s.maxCols))
	}
}

// ApplyBatch computes the blocked contraction dst = R ×̄₁ X ×̄₂ X for b
// interleaved class columns: x is an n×b block, dst an m×b block (stride
// b), and dst must not alias x. Column c of dst is bitwise equal to
// Apply run on column c of x; the mode-1 and mode-2 sums coincide
// bitwise when xi == xj, so the sum is computed once and squared.
func (r *RelationTransition) ApplyBatch(s *RelationBatchScratch, x, dst []float64, b int) {
	s.checkCols(b)
	checkRelationBlocks(r, "ApplyBatch", len(x), len(dst), b)
	m := r.m
	dst = dst[:m*b]
	for q := range dst {
		dst[q] = 0
	}
	sumI, mass, u := s.sumI[:b], s.mass[:b], s.u[:b]
	colSums(x[:r.n*b], b, sumI)
	for c := range mass {
		mass[c] = 0
	}
	if asm := useBatchASM && !s.NoASM; asm && (b == 4 || b == 8) {
		// The AVX2 split kernels beat the fused pass; both orders are
		// bitwise identical (see fusedMassScatterBatch).
		pairMassBatch(x, x, r.tubeI, r.tubeJ, b, 0, len(r.tubeI), mass, asm)
		cooScatterBatch(dst, x, x, r.k, r.i, r.j, r.p, b, 0, len(r.p), asm)
	} else {
		fusedMassScatterBatch(dst, x, x, r.tubeI, r.tubeJ, r.tubeStart, r.k, r.p, b, mass)
	}
	danglingAddends(sumI, sumI, mass, u, m)
	addUniformCols(dst, u, b)
	if fault.Enabled() {
		fault.Fire(fault.TensorRelationBatch, dst, b)
	}
}

type relationBatchTask struct {
	r *RelationTransition
	s *RelationBatchScratch
	x []float64
	b int
}

func (t *relationBatchTask) RunShard(shard, shards int) {
	r, s, b := t.r, t.s, t.b
	m := r.m
	part := s.partials[shard*m*s.maxCols : shard*m*s.maxCols+m*b]
	for i := range part {
		part[i] = 0
	}
	x := t.x
	sumI := s.sumI[shard*s.maxCols : shard*s.maxCols+b]
	mass := s.mass[shard*s.maxCols : shard*s.maxCols+b]
	for c := 0; c < b; c++ {
		sumI[c], mass[c] = 0, 0
	}
	lo, hi := par.Split(r.n, shards, shard)
	for i := lo; i < hi; i++ {
		row := x[i*b : i*b+b]
		for c, v := range row {
			sumI[c] += v
		}
	}
	asm := useBatchASM && !s.NoASM
	lo, hi = par.Split(len(r.tubeI), shards, shard)
	pairMassBatch(x, x, r.tubeI, r.tubeJ, b, lo, hi, mass, asm)
	lo, hi = par.Split(len(r.p), shards, shard)
	cooScatterBatch(part, x, x, r.k, r.i, r.j, r.p, b, lo, hi, asm)
}

// ApplyBatchParallel computes the blocked contraction like ApplyBatch
// with the entry shards spread across the pool, reducing the m×b output
// serially in the caller like the single-vector ApplyPairParallel. For a
// fixed worker count column c of the result is bitwise equal to
// ApplyParallel run on column c alone. A nil/serial pool or single-shard
// scratch falls back to the serial path.
func (r *RelationTransition) ApplyBatchParallel(p *par.Pool, s *RelationBatchScratch, x, dst []float64, b int) {
	if p.Serial() || s == nil || s.shards <= 1 {
		r.ApplyBatch(s, x, dst, b)
		return
	}
	s.checkCols(b)
	checkRelationBlocks(r, "ApplyBatchParallel", len(x), len(dst), b)
	s.Probe.ObserveCols(len(r.p), b)
	t := &s.task
	t.x, t.b = x, b
	p.Run(s.shards, t, &s.wg)
	u := s.u[:b]
	for c := 0; c < b; c++ {
		var sumI, stored float64
		for w := 0; w < s.shards; w++ {
			sumI += s.sumI[w*s.maxCols+c]
			stored += s.mass[w*s.maxCols+c]
		}
		if dangling := sumI*sumI - stored; dangling > 1e-15 && r.m > 0 {
			u[c] = dangling / float64(r.m)
		} else {
			u[c] = 0
		}
	}
	m := r.m
	for k := 0; k < m; k++ {
		row := k * b
		for c := 0; c < b; c++ {
			acc := u[c]
			for w := 0; w < s.shards; w++ {
				acc += s.partials[w*m*s.maxCols+row+c]
			}
			dst[row+c] = acc
		}
	}
	t.x = nil
	if fault.Enabled() {
		fault.Fire(fault.TensorRelationBatch, dst[:m*b], b)
	}
}

func checkRelationBlocks(r *RelationTransition, op string, lx, ldst, b int) {
	if lx < r.n*b {
		panic(fmt.Sprintf("tensor: RelationTransition.%s x block %d, want %d", op, lx, r.n*b))
	}
	if ldst < r.m*b {
		panic(fmt.Sprintf("tensor: RelationTransition.%s dst block %d, want %d", op, ldst, r.m*b))
	}
}
