package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// paperExample builds the bibliography HIN of Section 3.2: four
// publications, relations 0=co-author, 1=citation (directed, a[i,j]: j
// cites i), 2=same conference.
func paperExample() *Tensor {
	t := New(4, 3)
	// co-author: p1 and p2 share an author (undirected).
	t.Add(0, 1, 0, 1)
	t.Add(1, 0, 0, 1)
	// citation: p3 cites p2 and p4; p4 cites p1.
	t.Add(1, 2, 1, 1)
	t.Add(3, 2, 1, 1)
	t.Add(0, 3, 1, 1)
	// same conference: p2 and p3 both at WWW (undirected).
	t.Add(1, 2, 2, 1)
	t.Add(2, 1, 2, 1)
	t.Finalize()
	return t
}

func TestAddFinalizeAt(t *testing.T) {
	a := paperExample()
	if a.N() != 4 || a.M() != 3 {
		t.Fatalf("shape = %dx%d, want 4x3", a.N(), a.M())
	}
	if a.NNZ() != 7 {
		t.Fatalf("NNZ = %d, want 7", a.NNZ())
	}
	if got := a.At(1, 2, 1); got != 1 {
		t.Errorf("At(1,2,1) = %v, want 1 (p3 cites p2)", got)
	}
	if got := a.At(2, 2, 1); got != 0 {
		t.Errorf("At(2,2,1) = %v, want 0", got)
	}
}

func TestAddCoalescesDuplicates(t *testing.T) {
	a := New(2, 1)
	a.Add(0, 1, 0, 1)
	a.Add(0, 1, 0, 2)
	a.Finalize()
	if a.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 after coalescing", a.NNZ())
	}
	if got := a.At(0, 1, 0); got != 3 {
		t.Errorf("coalesced value = %v, want 3", got)
	}
}

func TestAddZeroIgnored(t *testing.T) {
	a := New(2, 1)
	a.Add(0, 1, 0, 0)
	a.Finalize()
	if a.NNZ() != 0 {
		t.Errorf("zero Add should be ignored, NNZ=%d", a.NNZ())
	}
}

func TestAddPanics(t *testing.T) {
	a := New(2, 1)
	for _, c := range []struct {
		name    string
		i, j, k int
		v       float64
	}{
		{"i out of range", 2, 0, 0, 1},
		{"j out of range", 0, -1, 0, 1},
		{"k out of range", 0, 0, 1, 1},
		{"negative value", 0, 0, 0, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Add should panic", c.name)
				}
			}()
			a.Add(c.i, c.j, c.k, c.v)
		}()
	}
}

func TestUseBeforeFinalizePanics(t *testing.T) {
	a := New(2, 1)
	a.Add(0, 1, 0, 1)
	defer func() {
		if recover() == nil {
			t.Errorf("At before Finalize should panic")
		}
	}()
	a.At(0, 1, 0)
}

func TestFinalizeIdempotent(t *testing.T) {
	a := paperExample()
	nnz := a.NNZ()
	a.Finalize()
	if a.NNZ() != nnz {
		t.Errorf("second Finalize changed NNZ: %d vs %d", a.NNZ(), nnz)
	}
}

func TestSlice(t *testing.T) {
	a := paperExample()
	s := a.Slice(1) // citation
	if s[1][2] != 1 || s[3][2] != 1 || s[0][3] != 1 {
		t.Errorf("citation slice wrong: %v", s)
	}
	var total float64
	for _, row := range s {
		for _, v := range row {
			total += v
		}
	}
	if total != 3 {
		t.Errorf("citation slice mass = %v, want 3", total)
	}
}

func TestUnfoldShapesMatchPaper(t *testing.T) {
	a := paperExample()
	u1 := a.Unfold1()
	if u1.Rows != 4 || u1.Cols != 12 {
		t.Errorf("Unfold1 shape %dx%d, want 4x12 as in Section 3.2", u1.Rows, u1.Cols)
	}
	u3 := a.Unfold3()
	if u3.Rows != 3 || u3.Cols != 16 {
		t.Errorf("Unfold3 shape %dx%d, want 3x16 as in Section 3.2", u3.Rows, u3.Cols)
	}
	// Mass must be preserved by both unfoldings.
	var m1, m3 float64
	for _, v := range u1.Data {
		m1 += v
	}
	for _, v := range u3.Data {
		m3 += v
	}
	if m1 != 7 || m3 != 7 {
		t.Errorf("unfold mass = %v / %v, want 7", m1, m3)
	}
	// Cross-check a specific cell: a[1,2,1] lives at Unfold1 (1, 2+1*4) and
	// Unfold3 (1, 1+2*4).
	if u1.At(1, 6) != 1 {
		t.Errorf("Unfold1[1,6] = %v, want 1", u1.At(1, 6))
	}
	if u3.At(1, 9) != 1 {
		t.Errorf("Unfold3[1,9] = %v, want 1", u3.At(1, 9))
	}
}

func TestIrreducible(t *testing.T) {
	if !paperExample().Irreducible() {
		t.Errorf("paper example should be irreducible (strongly connected union graph)")
	}
	// Two disconnected components are reducible.
	a := New(4, 1)
	a.Add(0, 1, 0, 1)
	a.Add(1, 0, 0, 1)
	a.Add(2, 3, 0, 1)
	a.Add(3, 2, 0, 1)
	a.Finalize()
	if a.Irreducible() {
		t.Errorf("disconnected tensor should be reducible")
	}
	// A one-way chain is reducible even though weakly connected.
	b := New(3, 1)
	b.Add(1, 0, 0, 1)
	b.Add(2, 1, 0, 1)
	b.Finalize()
	if b.Irreducible() {
		t.Errorf("one-way chain should be reducible")
	}
	empty := New(0, 0)
	empty.Finalize()
	if empty.Irreducible() {
		t.Errorf("empty tensor should be reducible by convention")
	}
}

// randomTensor returns a random n×n×m tensor with the given nonzero count.
func randomTensor(rng *rand.Rand, n, m, nnz int) *Tensor {
	a := New(n, m)
	for p := 0; p < nnz; p++ {
		a.Add(rng.Intn(n), rng.Intn(n), rng.Intn(m), 1+rng.Float64())
	}
	a.Finalize()
	return a
}

func randomStochastic(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	var s float64
	for i := range x {
		x[i] = rng.Float64() + 1e-3
		s += x[i]
	}
	for i := range x {
		x[i] /= s
	}
	return x
}

func TestEachOrderAndCount(t *testing.T) {
	a := paperExample()
	count := 0
	lastK, lastJ := -1, -1
	a.Each(func(i, j, k int, v float64) {
		count++
		if k < lastK || (k == lastK && j < lastJ) {
			t.Fatalf("Each out of (k,j) order at (%d,%d,%d)", i, j, k)
		}
		lastK, lastJ = k, j
		if v <= 0 {
			t.Fatalf("Each yielded nonpositive value %v", v)
		}
	})
	if count != a.NNZ() {
		t.Errorf("Each visited %d entries, want %d", count, a.NNZ())
	}
}

func TestSliceOutOfRangePanics(t *testing.T) {
	a := paperExample()
	defer func() {
		if recover() == nil {
			t.Errorf("Slice(3) should panic for m=3")
		}
	}()
	a.Slice(3)
}

func TestAtAbsentEntryZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomTensor(rng, 6, 3, 10)
	// Count nonzeros through At and compare with NNZ-derived mass.
	var massAt, massEach float64
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			for k := 0; k < 3; k++ {
				massAt += a.At(i, j, k)
			}
		}
	}
	a.Each(func(_, _, _ int, v float64) { massEach += v })
	if math.Abs(massAt-massEach) > 1e-12 {
		t.Errorf("At mass %v != Each mass %v", massAt, massEach)
	}
}
