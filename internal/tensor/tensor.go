// Package tensor implements the sparse 3-way tensor representation of a
// heterogeneous information network used by the T-Mark algorithm, together
// with the two transition-probability tensors of the paper:
//
//	O (eq. 1): o[i,j,k] = a[i,j,k] / Σ_i a[i,j,k]  — probability of visiting
//	  node i given the walker sits at node j and uses relation k;
//	R (eq. 2): r[i,j,k] = a[i,j,k] / Σ_k a[i,j,k]  — probability of using
//	  relation k given the walker moves from node j to node i.
//
// Dangling columns and tubes (all-zero denominators) are handled exactly as
// the paper prescribes: the probability mass is spread uniformly (1/n over
// nodes, 1/m over relations). Those uniform blocks are dense, so they are
// never materialised; the contraction routines account for them in closed
// form using the stochasticity of the input vectors.
package tensor

import (
	"fmt"
)

// Tensor is a sparse nonnegative 3-way tensor A of size n×n×m in coordinate
// form. The first two modes index nodes and the third indexes relations
// (link types): a[i,j,k] > 0 means node j links to node i via relation k.
//
// Build one with New followed by Add calls, then call Finalize before use.
type Tensor struct {
	n, m int

	i, j, k []int32
	v       []float64

	finalized bool
}

// New returns an empty n×n×m tensor.
func New(n, m int) *Tensor {
	if n < 0 || m < 0 {
		panic(fmt.Sprintf("tensor: negative shape n=%d m=%d", n, m))
	}
	return &Tensor{n: n, m: m}
}

// N returns the node-mode dimension.
func (t *Tensor) N() int { return t.n }

// M returns the relation-mode dimension.
func (t *Tensor) M() int { return t.m }

// NNZ returns the number of stored nonzero entries. Valid after Finalize.
func (t *Tensor) NNZ() int { return len(t.v) }

// Add accumulates value into entry (i, j, k). Negative values and
// out-of-range indices panic: the tensor models link multiplicities and a
// bad index is always a bug in the caller. Zero values are ignored.
func (t *Tensor) Add(i, j, k int, value float64) {
	if i < 0 || i >= t.n || j < 0 || j >= t.n || k < 0 || k >= t.m {
		panic(fmt.Sprintf("tensor: Add index (%d,%d,%d) out of range %dx%dx%d", i, j, k, t.n, t.n, t.m))
	}
	if value < 0 {
		panic(fmt.Sprintf("tensor: Add negative value %v at (%d,%d,%d)", value, i, j, k))
	}
	if value == 0 {
		return
	}
	t.i = append(t.i, int32(i))
	t.j = append(t.j, int32(j))
	t.k = append(t.k, int32(k))
	t.v = append(t.v, value)
	t.finalized = false
}

// Finalize sorts the entries into (k, j, i) order and coalesces duplicates.
// The sort is an LSD counting sort over the three index modes — O(nnz)
// with no comparator calls. It is idempotent and must be called before At,
// the normalisations, or the unfoldings.
func (t *Tensor) Finalize() {
	if t.finalized {
		return
	}
	if len(t.v) > 0 {
		s := sortKJI(cooBuf{t.i, t.j, t.k, t.v}, t.n, t.m)
		// Coalesce duplicate coordinates in place.
		out := 0
		for p := range s.v {
			if out > 0 && s.i[out-1] == s.i[p] && s.j[out-1] == s.j[p] && s.k[out-1] == s.k[p] {
				s.v[out-1] += s.v[p]
				continue
			}
			s.i[out], s.j[out], s.k[out], s.v[out] = s.i[p], s.j[p], s.k[p], s.v[p]
			out++
		}
		t.i, t.j, t.k, t.v = s.i[:out], s.j[:out], s.k[:out], s.v[:out]
	}
	t.finalized = true
}

// At returns the entry at (i, j, k). The tensor must be finalized.
func (t *Tensor) At(i, j, k int) float64 {
	t.mustBeFinalized("At")
	// Binary search over the (k, j, i)-sorted entries.
	lo, hi := 0, len(t.v)
	for lo < hi {
		mid := (lo + hi) / 2
		ck, cj, ci := t.k[mid], t.j[mid], t.i[mid]
		switch {
		case int(ck) < k || (int(ck) == k && (int(cj) < j || (int(cj) == j && int(ci) < i))):
			lo = mid + 1
		case int(ck) == k && int(cj) == j && int(ci) == i:
			return t.v[mid]
		default:
			hi = mid
		}
	}
	return 0
}

// Each calls fn for every stored nonzero entry in (k, j, i) order.
func (t *Tensor) Each(fn func(i, j, k int, v float64)) {
	t.mustBeFinalized("Each")
	for p, val := range t.v {
		fn(int(t.i[p]), int(t.j[p]), int(t.k[p]), val)
	}
}

// Slice returns the k-th frontal slice as a dense n×n row-major matrix
// (rows index i, columns index j). Intended for inspection and small
// examples; it allocates n² floats.
func (t *Tensor) Slice(k int) [][]float64 {
	t.mustBeFinalized("Slice")
	if k < 0 || k >= t.m {
		panic(fmt.Sprintf("tensor: Slice index %d out of range %d", k, t.m))
	}
	s := make([][]float64, t.n)
	for i := range s {
		s[i] = make([]float64, t.n)
	}
	t.Each(func(i, j, kk int, v float64) {
		if kk == k {
			s[i][j] = v
		}
	})
	return s
}

func (t *Tensor) mustBeFinalized(op string) {
	if !t.finalized {
		panic("tensor: " + op + " called before Finalize")
	}
}

// Irreducible reports whether the aggregated directed graph (union of all
// relation slices, edge j→i for each nonzero a[i,j,k]) is strongly
// connected. Irreducibility of A is the paper's standing assumption for the
// existence/uniqueness theorems; callers typically warn rather than fail
// when it does not hold, because the restart term α·l keeps the iteration
// well defined regardless.
func (t *Tensor) Irreducible() bool {
	t.mustBeFinalized("Irreducible")
	if t.n == 0 {
		return false
	}
	fwd := make([][]int32, t.n)
	rev := make([][]int32, t.n)
	t.Each(func(i, j, _ int, _ float64) {
		fwd[j] = append(fwd[j], int32(i))
		rev[i] = append(rev[i], int32(j))
	})
	return reachesAll(fwd, 0) && reachesAll(rev, 0)
}

func reachesAll(adj [][]int32, start int) bool {
	n := len(adj)
	seen := make([]bool, n)
	stack := []int32{int32(start)}
	seen[start] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[u] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}
