package tensor

// Parallel paths for the transition-tensor contractions. The COO entry
// arrays are already sorted, so a shard is just a contiguous index range;
// each shard contracts into a per-worker output buffer and a strided
// reduction folds the buffers into dst. No worker ever writes another
// worker's memory, so there are no atomics and no races, and because shard
// boundaries and the reduction order depend only on the shard count, the
// result is bit-for-bit deterministic for a fixed scratch size.

import (
	"fmt"
	"sync"

	"tmark/internal/obs"
	"tmark/internal/par"
)

// NodeApplyScratch holds the per-worker buffers of the sharded
// NodeTransition contraction. Build one per solver run with
// NewNodeApplyScratch and reuse it across iterations; steady-state
// ApplyParallel calls then allocate nothing. A scratch must not be shared
// by concurrent calls.
type NodeApplyScratch struct {
	shards   int
	partials []float64 // shards × n, worker-major: shard s owns [s·n, (s+1)·n)
	sumX     []float64 // per-shard partial sums of x
	sumZ     []float64 // per-shard partial sums of z
	mass     []float64 // per-shard stored-column mass Σ x[j]·z[k]
	task     nodeApplyTask
	wg       sync.WaitGroup

	// Probe, when non-nil, counts ApplyParallel calls and the stored
	// entries they contract (the kernel's work items). The nil default
	// costs one branch per call.
	Probe *obs.Probe
}

// NewNodeApplyScratch sizes scratch buffers for o with the given shard
// count (typically the worker-pool size). shards < 1 is treated as 1.
func NewNodeApplyScratch(o *NodeTransition, shards int) *NodeApplyScratch {
	if shards < 1 {
		shards = 1
	}
	s := &NodeApplyScratch{
		shards:   shards,
		partials: make([]float64, shards*o.n),
		sumX:     make([]float64, shards),
		sumZ:     make([]float64, shards),
		mass:     make([]float64, shards),
	}
	s.task.o = o
	s.task.s = s
	return s
}

// nodeApplyTask is the par.Task of one ApplyParallel call. It lives inside
// the scratch so dispatch never allocates.
type nodeApplyTask struct {
	o      *NodeTransition
	s      *NodeApplyScratch
	x, z   []float64
	dst    []float64
	u      float64 // per-node dangling addend, set between the two phases
	reduce bool    // false: scatter phase, true: reduction phase
}

func (t *nodeApplyTask) RunShard(shard, shards int) {
	o, s := t.o, t.s
	n := o.n
	if t.reduce {
		// Strided reduction: this shard owns a contiguous slice of dst and
		// folds every worker's partial for it, always in worker order.
		lo, hi := par.Split(n, shards, shard)
		u := t.u
		for i := lo; i < hi; i++ {
			acc := u
			for w := 0; w < shards; w++ {
				acc += s.partials[w*n+i]
			}
			t.dst[i] = acc
		}
		return
	}
	part := s.partials[shard*n : (shard+1)*n]
	for i := range part {
		part[i] = 0
	}
	x, z := t.x, t.z
	var sx, sz float64
	lo, hi := par.Split(len(x), shards, shard)
	for _, v := range x[lo:hi] {
		sx += v
	}
	lo, hi = par.Split(len(z), shards, shard)
	for _, v := range z[lo:hi] {
		sz += v
	}
	s.sumX[shard], s.sumZ[shard] = sx, sz
	var mass float64
	lo, hi = par.Split(len(o.colJ), shards, shard)
	for q := lo; q < hi; q++ {
		mass += x[o.colJ[q]] * z[o.colK[q]]
	}
	s.mass[shard] = mass
	lo, hi = par.Split(len(o.p), shards, shard)
	for q := lo; q < hi; q++ {
		part[o.i[q]] += o.p[q] * x[o.j[q]] * z[o.k[q]]
	}
}

// ApplyParallel computes dst = O ×̄₁ x ×̄₃ z exactly like Apply, but
// contracts the entry shards on the pool's workers into the per-worker
// buffers of s, then reduces. The result is deterministic for a fixed
// scratch shard count and differs from the serial Apply by float rounding
// only (the summation order changes). A nil/serial pool or single-shard
// scratch falls back to the serial path.
func (o *NodeTransition) ApplyParallel(p *par.Pool, s *NodeApplyScratch, x, z, dst []float64) {
	if p.Serial() || s == nil || s.shards <= 1 {
		o.Apply(x, z, dst)
		return
	}
	if len(x) != o.n || len(dst) != o.n {
		panic(fmt.Sprintf("tensor: NodeTransition.ApplyParallel x/dst length %d/%d, want %d", len(x), len(dst), o.n))
	}
	if len(z) != o.m {
		panic(fmt.Sprintf("tensor: NodeTransition.ApplyParallel z length %d, want %d", len(z), o.m))
	}
	s.Probe.Observe(len(o.p))
	t := &s.task
	t.x, t.z, t.dst = x, z, dst
	t.reduce, t.u = false, 0
	p.Run(s.shards, t, &s.wg)
	var sumX, sumZ, stored float64
	for w := 0; w < s.shards; w++ {
		sumX += s.sumX[w]
		sumZ += s.sumZ[w]
		stored += s.mass[w]
	}
	if dangling := sumX*sumZ - stored; dangling > 1e-15 && o.n > 0 {
		t.u = dangling / float64(o.n)
	}
	t.reduce = true
	p.Run(s.shards, t, &s.wg)
	t.x, t.z, t.dst = nil, nil, nil
}

// RelationApplyScratch holds the per-worker buffers of the sharded
// RelationTransition contraction; see NodeApplyScratch for the contract.
// The output dimension m (relation types) is small, so the reduction runs
// serially in the caller.
type RelationApplyScratch struct {
	shards   int
	partials []float64 // shards × m, worker-major
	sumI     []float64
	sumJ     []float64
	mass     []float64
	task     relationApplyTask
	wg       sync.WaitGroup

	// Probe, when non-nil, counts ApplyPairParallel calls and the stored
	// entries they contract; nil disables observation.
	Probe *obs.Probe
}

// NewRelationApplyScratch sizes scratch buffers for r with the given shard
// count. shards < 1 is treated as 1.
func NewRelationApplyScratch(r *RelationTransition, shards int) *RelationApplyScratch {
	if shards < 1 {
		shards = 1
	}
	s := &RelationApplyScratch{
		shards:   shards,
		partials: make([]float64, shards*r.m),
		sumI:     make([]float64, shards),
		sumJ:     make([]float64, shards),
		mass:     make([]float64, shards),
	}
	s.task.r = r
	s.task.s = s
	return s
}

type relationApplyTask struct {
	r      *RelationTransition
	s      *RelationApplyScratch
	xi, xj []float64
}

func (t *relationApplyTask) RunShard(shard, shards int) {
	r, s := t.r, t.s
	m := r.m
	part := s.partials[shard*m : (shard+1)*m]
	for k := range part {
		part[k] = 0
	}
	xi, xj := t.xi, t.xj
	var si, sj float64
	lo, hi := par.Split(len(xi), shards, shard)
	for _, v := range xi[lo:hi] {
		si += v
	}
	lo, hi = par.Split(len(xj), shards, shard)
	for _, v := range xj[lo:hi] {
		sj += v
	}
	s.sumI[shard], s.sumJ[shard] = si, sj
	var mass float64
	lo, hi = par.Split(len(r.tubeI), shards, shard)
	for q := lo; q < hi; q++ {
		mass += xi[r.tubeI[q]] * xj[r.tubeJ[q]]
	}
	s.mass[shard] = mass
	lo, hi = par.Split(len(r.p), shards, shard)
	for q := lo; q < hi; q++ {
		part[r.k[q]] += r.p[q] * xi[r.i[q]] * xj[r.j[q]]
	}
}

// ApplyPairParallel computes dst[k] = Σ_i Σ_j r[i,j,k]·xi[i]·xj[j] like
// ApplyPair, sharding the stored entries across the pool. Deterministic
// for a fixed scratch shard count; steady-state calls allocate nothing.
func (r *RelationTransition) ApplyPairParallel(p *par.Pool, s *RelationApplyScratch, xi, xj, dst []float64) {
	if p.Serial() || s == nil || s.shards <= 1 {
		r.ApplyPair(xi, xj, dst)
		return
	}
	if len(xi) != r.n || len(xj) != r.n {
		panic(fmt.Sprintf("tensor: RelationTransition.ApplyPairParallel x lengths %d/%d, want %d", len(xi), len(xj), r.n))
	}
	if len(dst) != r.m {
		panic(fmt.Sprintf("tensor: RelationTransition.ApplyPairParallel dst length %d, want %d", len(dst), r.m))
	}
	s.Probe.Observe(len(r.p))
	t := &s.task
	t.xi, t.xj = xi, xj
	p.Run(s.shards, t, &s.wg)
	var sumI, sumJ, stored float64
	for w := 0; w < s.shards; w++ {
		sumI += s.sumI[w]
		sumJ += s.sumJ[w]
		stored += s.mass[w]
	}
	var u float64
	if dangling := sumI*sumJ - stored; dangling > 1e-15 && r.m > 0 {
		u = dangling / float64(r.m)
	}
	m := r.m
	for k := 0; k < m; k++ {
		acc := u
		for w := 0; w < s.shards; w++ {
			acc += s.partials[w*m+k]
		}
		dst[k] = acc
	}
	t.xi, t.xj = nil, nil
}

// ApplyParallel is the xi == xj case of ApplyPairParallel, mirroring Apply.
func (r *RelationTransition) ApplyParallel(p *par.Pool, s *RelationApplyScratch, x, dst []float64) {
	r.ApplyPairParallel(p, s, x, x, dst)
}
