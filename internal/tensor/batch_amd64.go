package tensor

// AVX2 variants of the blocked contraction inner loops for the common
// column counts 4 and 8. A b-column row is exactly one (b = 4) or two
// (b = 8) 256-bit lanes, so the scalar bodies of cooScatterBatch and
// pairMassBatch map 1:1 onto VMULPD/VADDPD: each lane performs the same
// IEEE-754 double multiply/add as the scalar `*`/`+` on that column, in
// the same per-column order (no FMA contraction), so the vector kernels
// are bitwise identical to the scalar ones and every equivalence test
// covers both. The b-row run cache lives in a vector register with the
// same reload-on-index-change rule as the scalar loop.
//
// useBatchASM is resolved once at startup: the amd64 baseline (GOAMD64
// v1) does not guarantee AVX2, so the kernels are gated on a CPUID
// probe (AVX2 + OSXSAVE + OS-enabled YMM state).
var useBatchASM = cpuSupportsAVX2()

// cpuSupportsAVX2 reports whether the CPU and OS support AVX2 (CPUID
// leaf 7 AVX2, leaf 1 OSXSAVE/AVX, and XCR0 XMM+YMM state enabled).
func cpuSupportsAVX2() bool

// cooScatterAVX4 is the cols = 4 body of cooScatterBatch over n entries:
// dst[di·4+c] += p·a[ai·4+c]·bb[bi·4+c], entries in order, bb row cached.
//
//go:noescape
func cooScatterAVX4(dst, a, bb *float64, di, ai, bi *int32, p *float64, n int)

// cooScatterAVX8 is the cols = 8 body of cooScatterBatch.
//
//go:noescape
func cooScatterAVX8(dst, a, bb *float64, di, ai, bi *int32, p *float64, n int)

// pairMassAVX4 is the cols = 4 body of pairMassBatch over n pairs:
// mass[c] += a[ai·4+c]·bb[bi·4+c], pairs in order, bb row cached.
//
//go:noescape
func pairMassAVX4(a, bb *float64, ai, bi *int32, n int, mass *float64)

// pairMassAVX8 is the cols = 8 body of pairMassBatch.
//
//go:noescape
func pairMassAVX8(a, bb *float64, ai, bi *int32, n int, mass *float64)
