//go:build !amd64

package tensor

// Non-amd64 builds always take the pure-Go kernel bodies; the stubs are
// never reached. A var (not a const) so tests can exercise the scalar
// fallback uniformly across builds.
var useBatchASM = false

func cooScatterAVX4(dst, a, bb *float64, di, ai, bi *int32, p *float64, n int) {
	panic("tensor: AVX2 kernel on non-amd64 build")
}

func cooScatterAVX8(dst, a, bb *float64, di, ai, bi *int32, p *float64, n int) {
	panic("tensor: AVX2 kernel on non-amd64 build")
}

func pairMassAVX4(a, bb *float64, ai, bi *int32, n int, mass *float64) {
	panic("tensor: AVX2 kernel on non-amd64 build")
}

func pairMassAVX8(a, bb *float64, ai, bi *int32, n int, mass *float64) {
	panic("tensor: AVX2 kernel on non-amd64 build")
}
