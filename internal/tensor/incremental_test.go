package tensor

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// randomBase builds a finalized tensor from random entries (with
// deliberate duplicate coordinates so the coalescing path is exercised)
// and returns it plus the distinct coordinate set.
func randomBase(rng *rand.Rand, n, m int) (*Tensor, map[[3]int32]bool) {
	t := New(n, m)
	coords := map[[3]int32]bool{}
	entries := rng.Intn(4 * n * m)
	for e := 0; e < entries; e++ {
		i, j, k := rng.Intn(n), rng.Intn(n), rng.Intn(m)
		t.Add(i, j, k, 0.1+rng.Float64())
		coords[[3]int32{int32(i), int32(j), int32(k)}] = true
	}
	t.Finalize()
	return t, coords
}

// randomChanges mutates a random subset of existing coordinates
// (update or remove) and inserts some fresh ones, returning the final
// per-coordinate values (0 = removed).
func randomChanges(rng *rand.Rand, n, m int, coords map[[3]int32]bool) map[[3]int32]float64 {
	ch := map[[3]int32]float64{}
	for c := range coords {
		switch rng.Intn(4) {
		case 0: // update
			ch[c] = 0.1 + rng.Float64()
		case 1: // remove
			ch[c] = 0
		}
	}
	for e := rng.Intn(2 * n); e > 0; e-- {
		c := [3]int32{int32(rng.Intn(n)), int32(rng.Intn(n)), int32(rng.Intn(m))}
		if !coords[c] {
			ch[c] = 0.1 + rng.Float64()
		}
	}
	return ch
}

func sortedChanges(ch map[[3]int32]float64, cmp func(a, b [3]int32) bool) []Change {
	keys := make([][3]int32, 0, len(ch))
	for c := range ch {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(a, b int) bool { return cmp(keys[a], keys[b]) })
	out := make([]Change, len(keys))
	for q, c := range keys {
		out[q] = Change{I: c[0], J: c[1], K: c[2], V: ch[c]}
	}
	return out
}

func kjiLess(a, b [3]int32) bool {
	if a[2] != b[2] {
		return a[2] < b[2]
	}
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	return a[0] < b[0]
}

func jikLess(a, b [3]int32) bool {
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[2] < b[2]
}

// rebuildTensor constructs the post-change tensor from scratch: base
// values for untouched coordinates, change values otherwise.
func rebuildTensor(base COO, ch map[[3]int32]float64) *Tensor {
	t := New(base.N, base.M)
	for q := range base.V {
		c := [3]int32{base.I[q], base.J[q], base.K[q]}
		if _, touched := ch[c]; !touched {
			t.Add(int(c[0]), int(c[1]), int(c[2]), base.V[q])
		}
	}
	for c, v := range ch {
		if v != 0 {
			t.Add(int(c[0]), int(c[1]), int(c[2]), v)
		}
	}
	t.Finalize()
	return t
}

// TestIncrementalBitwiseEquivalence is the core property: after any
// random add/update/remove batch, the merged COO plus touched-run
// renormalisation reproduces NewNodeTransition/NewRelationTransition of
// a from-scratch rebuild bit for bit, and the results pass the strict
// FromRaw validators and stochasticity checks.
func TestIncrementalBitwiseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		n, m := 1+rng.Intn(8), 1+rng.Intn(3)
		base, coords := randomBase(rng, n, m)
		a := base.COOView()
		ar := a.SortedJIK()
		prevO := NewNodeTransition(base).Raw()
		prevR := NewRelationTransition(base).Raw()

		ch := randomChanges(rng, n, m, coords)
		touchedCols := map[[2]int32]bool{}
		touchedTubes := map[[2]int32]bool{}
		for c := range ch {
			touchedCols[[2]int32{c[1], c[2]}] = true
			touchedTubes[[2]int32{c[0], c[1]}] = true
		}

		merged, err := MergeKJI(a, sortedChanges(ch, kjiLess))
		if err != nil {
			t.Fatalf("trial %d: MergeKJI: %v", trial, err)
		}
		mergedR, err := MergeJIK(ar, sortedChanges(ch, jikLess))
		if err != nil {
			t.Fatalf("trial %d: MergeJIK: %v", trial, err)
		}

		oRaw := RenormalizeNode(merged, prevO, func(j, k int32) bool { return touchedCols[[2]int32{j, k}] })
		rRaw := RenormalizeRelation(mergedR, prevR, func(i, j int32) bool { return touchedTubes[[2]int32{i, j}] })
		o, err := NodeTransitionFromRaw(oRaw)
		if err != nil {
			t.Fatalf("trial %d: NodeTransitionFromRaw: %v", trial, err)
		}
		r, err := RelationTransitionFromRaw(rRaw)
		if err != nil {
			t.Fatalf("trial %d: RelationTransitionFromRaw: %v", trial, err)
		}
		if !o.ColumnsStochastic(1e-12) {
			t.Fatalf("trial %d: touched O columns not stochastic", trial)
		}
		if !r.TubesStochastic(1e-12) {
			t.Fatalf("trial %d: touched R tubes not stochastic", trial)
		}

		rebuilt := rebuildTensor(a, ch)
		wantO := NewNodeTransition(rebuilt).Raw()
		wantR := NewRelationTransition(rebuilt).Raw()
		compareNodeRaw(t, trial, oRaw, wantO)
		compareRelationRaw(t, trial, rRaw, wantR)

		if got, want := merged.Irreducible(), rebuilt.Irreducible(); got != want {
			t.Fatalf("trial %d: COO.Irreducible=%v, rebuilt tensor says %v", trial, got, want)
		}
	}
}

func compareNodeRaw(t *testing.T, trial int, got, want NodeRaw) {
	t.Helper()
	if len(got.P) != len(want.P) || len(got.ColJ) != len(want.ColJ) {
		t.Fatalf("trial %d: O shape mismatch nnz %d/%d cols %d/%d",
			trial, len(got.P), len(want.P), len(got.ColJ), len(want.ColJ))
	}
	for q := range want.P {
		if got.I[q] != want.I[q] || got.J[q] != want.J[q] || got.K[q] != want.K[q] {
			t.Fatalf("trial %d: O entry %d index (%d,%d,%d) want (%d,%d,%d)",
				trial, q, got.I[q], got.J[q], got.K[q], want.I[q], want.J[q], want.K[q])
		}
		if math.Float64bits(got.P[q]) != math.Float64bits(want.P[q]) {
			t.Fatalf("trial %d: O entry %d probability %v not bitwise equal to rebuild %v",
				trial, q, got.P[q], want.P[q])
		}
	}
	for q := range want.ColJ {
		if got.ColJ[q] != want.ColJ[q] || got.ColK[q] != want.ColK[q] {
			t.Fatalf("trial %d: O column %d (%d,%d) want (%d,%d)",
				trial, q, got.ColJ[q], got.ColK[q], want.ColJ[q], want.ColK[q])
		}
	}
}

func compareRelationRaw(t *testing.T, trial int, got, want RelationRaw) {
	t.Helper()
	if len(got.P) != len(want.P) || len(got.TubeI) != len(want.TubeI) {
		t.Fatalf("trial %d: R shape mismatch nnz %d/%d tubes %d/%d",
			trial, len(got.P), len(want.P), len(got.TubeI), len(want.TubeI))
	}
	for q := range want.P {
		if got.I[q] != want.I[q] || got.J[q] != want.J[q] || got.K[q] != want.K[q] {
			t.Fatalf("trial %d: R entry %d index (%d,%d,%d) want (%d,%d,%d)",
				trial, q, got.I[q], got.J[q], got.K[q], want.I[q], want.J[q], want.K[q])
		}
		if math.Float64bits(got.P[q]) != math.Float64bits(want.P[q]) {
			t.Fatalf("trial %d: R entry %d probability %v not bitwise equal to rebuild %v",
				trial, q, got.P[q], want.P[q])
		}
	}
	for q := range want.TubeI {
		if got.TubeI[q] != want.TubeI[q] || got.TubeJ[q] != want.TubeJ[q] || got.TubeStart[q] != want.TubeStart[q] {
			t.Fatalf("trial %d: R tube %d mismatch", trial, q)
		}
	}
	if got.TubeStart[len(got.TubeI)] != want.TubeStart[len(want.TubeI)] {
		t.Fatalf("trial %d: R final tube offset mismatch", trial)
	}
}

func TestMergeRejectsBadChanges(t *testing.T) {
	base := New(3, 2)
	base.Add(1, 0, 0, 1)
	base.Add(2, 1, 1, 1)
	base.Finalize()
	a := base.COOView()
	cases := []struct {
		name string
		ch   []Change
	}{
		{"unsorted", []Change{{I: 2, J: 2, K: 1, V: 1}, {I: 0, J: 0, K: 0, V: 1}}},
		{"duplicate", []Change{{I: 1, J: 0, K: 0, V: 1}, {I: 1, J: 0, K: 0, V: 2}}},
		{"remove-absent", []Change{{I: 0, J: 0, K: 0, V: 0}}},
		{"out-of-range", []Change{{I: 3, J: 0, K: 0, V: 1}}},
		{"negative", []Change{{I: 0, J: 0, K: 0, V: -1}}},
		{"nan", []Change{{I: 0, J: 0, K: 0, V: math.NaN()}}},
		{"inf", []Change{{I: 0, J: 0, K: 0, V: math.Inf(1)}}},
	}
	for _, tc := range cases {
		if _, err := MergeKJI(a, tc.ch); err == nil {
			t.Errorf("MergeKJI(%s): want error", tc.name)
		}
	}
}

func TestMergeEmptyChangesIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base, _ := randomBase(rng, 5, 2)
	a := base.COOView()
	merged, err := MergeKJI(a, nil)
	if err != nil {
		t.Fatalf("MergeKJI: %v", err)
	}
	if merged.NNZ() != a.NNZ() {
		t.Fatalf("identity merge changed nnz %d -> %d", a.NNZ(), merged.NNZ())
	}
	for q := range a.V {
		if merged.I[q] != a.I[q] || merged.J[q] != a.J[q] || merged.K[q] != a.K[q] ||
			math.Float64bits(merged.V[q]) != math.Float64bits(a.V[q]) {
			t.Fatalf("identity merge altered entry %d", q)
		}
	}
}

func TestAtKJI(t *testing.T) {
	base := New(4, 2)
	base.Add(1, 0, 0, 2.5)
	base.Add(3, 2, 1, 1.5)
	base.Finalize()
	a := base.COOView()
	if v, ok := a.AtKJI(1, 0, 0); !ok || v != 2.5 {
		t.Fatalf("AtKJI(1,0,0) = %v,%v", v, ok)
	}
	if v, ok := a.AtKJI(3, 2, 1); !ok || v != 1.5 {
		t.Fatalf("AtKJI(3,2,1) = %v,%v", v, ok)
	}
	if _, ok := a.AtKJI(0, 0, 0); ok {
		t.Fatal("AtKJI found absent entry")
	}
}

func TestRenormalizePanicsOnWrongTouchedSet(t *testing.T) {
	base := New(3, 1)
	base.Add(1, 0, 0, 1)
	base.Add(2, 1, 0, 1)
	base.Finalize()
	a := base.COOView()
	prev := NewNodeTransition(base).Raw()
	merged, err := MergeKJI(a, []Change{{I: 0, J: 0, K: 0, V: 3}})
	if err != nil {
		t.Fatalf("MergeKJI: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RenormalizeNode accepted an understated touched set")
		}
	}()
	// Column (0,0) gained an entry but is reported untouched: the
	// cross-check must panic rather than silently serve stale bytes.
	RenormalizeNode(merged, prev, func(j, k int32) bool { return false })
}
