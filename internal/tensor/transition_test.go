package tensor

import (
	"math"
	"math/rand"
	"testing"

	"tmark/internal/vec"
)

const tol = 1e-9

func TestNodeTransitionNormalisesColumns(t *testing.T) {
	a := paperExample()
	o := NewNodeTransition(a)
	if !o.ColumnsStochastic(tol) {
		t.Fatalf("stored O columns must sum to one")
	}
	// Citation column j=2 (p3) has two out-citations, so each gets 0.5.
	if got := o.At(1, 2, 1); math.Abs(got-0.5) > tol {
		t.Errorf("o[1,2,1] = %v, want 0.5", got)
	}
	if got := o.At(3, 2, 1); math.Abs(got-0.5) > tol {
		t.Errorf("o[3,2,1] = %v, want 0.5", got)
	}
	// Co-author column j=0 has a single entry, probability 1.
	if got := o.At(1, 0, 0); math.Abs(got-1) > tol {
		t.Errorf("o[1,0,0] = %v, want 1", got)
	}
}

func TestNodeTransitionDanglingColumnUniform(t *testing.T) {
	a := paperExample()
	o := NewNodeTransition(a)
	// Column (j=0, k=1): p1 cites nobody, dangling → 1/n = 0.25 everywhere.
	for i := 0; i < 4; i++ {
		if got := o.At(i, 0, 1); math.Abs(got-0.25) > tol {
			t.Errorf("dangling o[%d,0,1] = %v, want 0.25", i, got)
		}
	}
	wantDangling := 4*3 - 6 // 12 columns, 6 with links
	if got := o.DanglingColumns(); got != wantDangling {
		t.Errorf("DanglingColumns = %d, want %d", got, wantDangling)
	}
}

func TestRelationTransitionNormalisesTubes(t *testing.T) {
	a := paperExample()
	r := NewRelationTransition(a)
	if !r.TubesStochastic(tol) {
		t.Fatalf("stored R tubes must sum to one")
	}
	// Tube (i=1, j=2): p3→p2 exists as citation AND same-conference, so
	// each relation gets probability 0.5.
	if got := r.At(1, 2, 1); math.Abs(got-0.5) > tol {
		t.Errorf("r[1,2,1] = %v, want 0.5", got)
	}
	if got := r.At(1, 2, 2); math.Abs(got-0.5) > tol {
		t.Errorf("r[1,2,2] = %v, want 0.5", got)
	}
	// Tube (i=0, j=1): only co-author.
	if got := r.At(0, 1, 0); math.Abs(got-1) > tol {
		t.Errorf("r[0,1,0] = %v, want 1", got)
	}
}

func TestRelationTransitionDanglingTubeUniform(t *testing.T) {
	a := paperExample()
	r := NewRelationTransition(a)
	// Tube (i=0, j=2): p3 never links to p1 → uniform 1/3.
	for k := 0; k < 3; k++ {
		if got := r.At(0, 2, k); math.Abs(got-1.0/3) > tol {
			t.Errorf("dangling r[0,2,%d] = %v, want 1/3", k, got)
		}
	}
	if got := r.DanglingTubes(); got != 16-6 {
		t.Errorf("DanglingTubes = %d, want 10", got)
	}
}

// Theorem 1: the contractions map the probability simplex into itself.
func TestApplyPreservesSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n, m := 2+rng.Intn(12), 1+rng.Intn(5)
		nnz := rng.Intn(3 * n * m)
		a := randomTensor(rng, n, m, nnz)
		o := NewNodeTransition(a)
		r := NewRelationTransition(a)
		x := randomStochastic(rng, n)
		z := randomStochastic(rng, m)
		dx := make([]float64, n)
		o.Apply(x, z, dx)
		if !vec.IsStochastic(dx, 1e-8) {
			t.Fatalf("trial %d: O-apply left simplex, sum=%v", trial, vec.Sum(dx))
		}
		dz := make([]float64, m)
		r.Apply(x, dz)
		if !vec.IsStochastic(dz, 1e-8) {
			t.Fatalf("trial %d: R-apply left simplex, sum=%v", trial, vec.Sum(dz))
		}
	}
}

// The sparse contraction must agree with the quadratic dense reference,
// including the implicit dangling mass.
func TestApplyMatchesDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n, m := 2+rng.Intn(7), 1+rng.Intn(4)
		a := randomTensor(rng, n, m, rng.Intn(2*n*m))
		o := NewNodeTransition(a)
		r := NewRelationTransition(a)
		x := randomStochastic(rng, n)
		z := randomStochastic(rng, m)

		sparse := make([]float64, n)
		o.Apply(x, z, sparse)
		dense := DenseApplyO(o, x, z)
		for i := range dense {
			if math.Abs(sparse[i]-dense[i]) > 1e-9 {
				t.Fatalf("trial %d: O sparse %v vs dense %v at %d", trial, sparse[i], dense[i], i)
			}
		}

		sparseZ := make([]float64, m)
		r.Apply(x, sparseZ)
		denseZ := DenseApplyR(r, x)
		for k := range denseZ {
			if math.Abs(sparseZ[k]-denseZ[k]) > 1e-9 {
				t.Fatalf("trial %d: R sparse %v vs dense %v at %d", trial, sparseZ[k], denseZ[k], k)
			}
		}
	}
}

func TestApplyAllDanglingIsUniform(t *testing.T) {
	a := New(3, 2)
	a.Finalize() // completely empty: every column/tube dangles
	o := NewNodeTransition(a)
	r := NewRelationTransition(a)
	x := []float64{0.2, 0.3, 0.5}
	z := []float64{0.4, 0.6}
	dx := make([]float64, 3)
	o.Apply(x, z, dx)
	for i, v := range dx {
		if math.Abs(v-1.0/3) > tol {
			t.Errorf("empty-tensor O apply [%d] = %v, want 1/3", i, v)
		}
	}
	dz := make([]float64, 2)
	r.Apply(x, dz)
	for k, v := range dz {
		if math.Abs(v-0.5) > tol {
			t.Errorf("empty-tensor R apply [%d] = %v, want 0.5", k, v)
		}
	}
}

func TestTransitionAtOutOfRangePanics(t *testing.T) {
	a := paperExample()
	o := NewNodeTransition(a)
	r := NewRelationTransition(a)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("O.At", func() { o.At(4, 0, 0) })
	mustPanic("R.At", func() { r.At(0, 0, 3) })
	mustPanic("O.Apply bad z", func() { o.Apply(make([]float64, 4), make([]float64, 2), make([]float64, 4)) })
	mustPanic("R.Apply bad dst", func() { r.Apply(make([]float64, 4), make([]float64, 2)) })
}

func TestNNZAndDims(t *testing.T) {
	a := paperExample()
	o := NewNodeTransition(a)
	r := NewRelationTransition(a)
	if o.N() != 4 || o.M() != 3 || r.N() != 4 || r.M() != 3 {
		t.Errorf("transition dims wrong: O %dx%d R %dx%d", o.N(), o.M(), r.N(), r.M())
	}
	if o.NNZ() != a.NNZ() || r.NNZ() != a.NNZ() {
		t.Errorf("transitions must keep the sparsity of A: %d/%d vs %d", o.NNZ(), r.NNZ(), a.NNZ())
	}
}

// Paper Fig. 3 spot checks: the O tensor of the worked example.
func TestPaperFigure3Values(t *testing.T) {
	o := NewNodeTransition(paperExample())
	cases := []struct {
		i, j, k int
		want    float64
	}{
		{1, 0, 0, 1},       // co-author p1→p2 column
		{0, 1, 0, 1},       // co-author p2→p1 column
		{1, 2, 1, 0.5},     // p3's citations split
		{3, 2, 1, 0.5},     //
		{0, 3, 1, 1},       // p4 cites p1 only
		{2, 1, 2, 1},       // same conference p2→p3
		{0, 2, 0, 1.0 / 4}, // dangling co-author column of p3
	}
	for _, c := range cases {
		if got := o.At(c.i, c.j, c.k); math.Abs(got-c.want) > tol {
			t.Errorf("o[%d,%d,%d] = %v, want %v", c.i, c.j, c.k, got, c.want)
		}
	}
}
