package tensor

import (
	"fmt"
	"math"
	"sort"
)

// NodeTransition is the transition-probability tensor O of eq. (1): for
// every column (j, k), o[·,j,k] is the distribution over the next node
// given the walker sits at node j and uses relation k. Columns of A that
// are entirely zero ("dangling") stand for the uniform distribution 1/n;
// they are kept implicit and folded into Apply in closed form.
type NodeTransition struct {
	n, m int

	// Nonzero probabilities sorted by (k, j, i); each (j,k) column sums to 1.
	i, j, k []int32
	p       []float64

	// Distinct non-dangling columns, sorted by (k, j), aligned slices.
	colJ, colK []int32
}

// NewNodeTransition normalises the finalized tensor a into O.
func NewNodeTransition(a *Tensor) *NodeTransition {
	a.mustBeFinalized("NewNodeTransition")
	o := &NodeTransition{
		n: a.n, m: a.m,
		i: make([]int32, len(a.i)),
		j: make([]int32, len(a.j)),
		k: make([]int32, len(a.k)),
		p: make([]float64, len(a.v)),
	}
	copy(o.i, a.i)
	copy(o.j, a.j)
	copy(o.k, a.k)
	// Entries are sorted by (k, j, i), so each (j,k) column is a contiguous
	// run; normalise run by run.
	for start := 0; start < len(a.v); {
		end := start + 1
		for end < len(a.v) && a.j[end] == a.j[start] && a.k[end] == a.k[start] {
			end++
		}
		var sum float64
		for p := start; p < end; p++ {
			sum += a.v[p]
		}
		for p := start; p < end; p++ {
			o.p[p] = a.v[p] / sum
		}
		o.colJ = append(o.colJ, a.j[start])
		o.colK = append(o.colK, a.k[start])
		start = end
	}
	return o
}

// N returns the node-mode dimension.
func (o *NodeTransition) N() int { return o.n }

// M returns the relation-mode dimension.
func (o *NodeTransition) M() int { return o.m }

// NNZ returns the number of explicitly stored probabilities.
func (o *NodeTransition) NNZ() int { return len(o.p) }

// DanglingColumns returns the number of implicit uniform columns.
func (o *NodeTransition) DanglingColumns() int { return o.n*o.m - len(o.colJ) }

// At returns o[i,j,k], including the implicit 1/n of dangling columns.
func (o *NodeTransition) At(i, j, k int) float64 {
	if i < 0 || i >= o.n || j < 0 || j >= o.n || k < 0 || k >= o.m {
		panic(fmt.Sprintf("tensor: NodeTransition.At (%d,%d,%d) out of range", i, j, k))
	}
	pos := sort.Search(len(o.p), func(q int) bool {
		if o.k[q] != int32(k) {
			return o.k[q] >= int32(k)
		}
		if o.j[q] != int32(j) {
			return o.j[q] >= int32(j)
		}
		return o.i[q] >= int32(i)
	})
	if pos < len(o.p) && o.i[pos] == int32(i) && o.j[pos] == int32(j) && o.k[pos] == int32(k) {
		return o.p[pos]
	}
	if o.columnDangling(j, k) {
		return 1 / float64(o.n)
	}
	return 0
}

func (o *NodeTransition) columnDangling(j, k int) bool {
	pos := sort.Search(len(o.colJ), func(q int) bool {
		if o.colK[q] != int32(k) {
			return o.colK[q] >= int32(k)
		}
		return o.colJ[q] >= int32(j)
	})
	return !(pos < len(o.colJ) && o.colJ[pos] == int32(j) && o.colK[pos] == int32(k))
}

// Apply computes dst = O ×̄₁ x ×̄₃ z, i.e.
//
//	dst[i] = Σ_j Σ_k o[i,j,k]·x[j]·z[k].
//
// dst must have length n and must not alias x. The implicit dangling
// columns contribute uniformly: their total mass is
// Σ_(dangling j,k) x[j]z[k] = (Σx)(Σz) − Σ_(stored columns) x[j]z[k],
// spread as 1/n per node. When x and z are probability vectors the result
// is again a probability vector (Theorem 1).
func (o *NodeTransition) Apply(x, z, dst []float64) {
	if len(x) != o.n || len(dst) != o.n {
		panic(fmt.Sprintf("tensor: NodeTransition.Apply x/dst length %d/%d, want %d", len(x), len(dst), o.n))
	}
	if len(z) != o.m {
		panic(fmt.Sprintf("tensor: NodeTransition.Apply z length %d, want %d", len(z), o.m))
	}
	for q := range dst {
		dst[q] = 0
	}
	var sumX, sumZ float64
	for _, v := range x {
		sumX += v
	}
	for _, v := range z {
		sumZ += v
	}
	storedMass := 0.0
	for q, cj := range o.colJ {
		storedMass += x[cj] * z[o.colK[q]]
	}
	for q, pi := range o.i {
		w := o.p[q] * x[o.j[q]] * z[o.k[q]]
		dst[pi] += w
	}
	if dangling := sumX*sumZ - storedMass; dangling > 1e-15 && o.n > 0 {
		u := dangling / float64(o.n)
		for q := range dst {
			dst[q] += u
		}
	}
}

// ColumnsStochastic reports whether every stored column sums to one within
// tol; it is a self-check used by tests and validation tooling.
func (o *NodeTransition) ColumnsStochastic(tol float64) bool {
	for start := 0; start < len(o.p); {
		end := start + 1
		for end < len(o.p) && o.j[end] == o.j[start] && o.k[end] == o.k[start] {
			end++
		}
		var sum float64
		for q := start; q < end; q++ {
			if o.p[q] < -tol {
				return false
			}
			sum += o.p[q]
		}
		if math.Abs(sum-1) > tol {
			return false
		}
		start = end
	}
	return true
}

// RelationTransition is the transition-probability tensor R of eq. (2):
// for every tube (i, j), r[i,j,·] is the distribution over the relation
// used given the walker moves from node j to node i. All-zero tubes stand
// for the uniform distribution 1/m and are kept implicit.
type RelationTransition struct {
	n, m int

	// Nonzero probabilities sorted by (j, i, k); each (i,j) tube sums to 1.
	i, j, k []int32
	p       []float64

	// Distinct non-dangling tubes, sorted by (j, i), aligned slices.
	// tubeStart[t] is the offset of tube t's first entry in the sorted
	// entry arrays (len(tubeI)+1 offsets, last = nnz): each tube is a
	// contiguous entry run, which the blocked serial kernel exploits to
	// fuse the stored-mass and scatter passes (fusedMassScatterBatch).
	tubeI, tubeJ []int32
	tubeStart    []int32
}

// NewRelationTransition normalises the finalized tensor a into R. The
// entries are re-sorted from the tensor's (k, j, i) layout into (j, i, k)
// by an LSD counting sort — O(nnz) with no permutation indirection.
func NewRelationTransition(a *Tensor) *RelationTransition {
	a.mustBeFinalized("NewRelationTransition")
	nnz := len(a.v)
	r := &RelationTransition{
		n: a.n, m: a.m,
		i: make([]int32, nnz),
		j: make([]int32, nnz),
		k: make([]int32, nnz),
		p: make([]float64, nnz),
	}
	copy(r.i, a.i)
	copy(r.j, a.j)
	copy(r.k, a.k)
	copy(r.p, a.v)
	if nnz > 0 {
		s := sortJIK(cooBuf{r.i, r.j, r.k, r.p}, a.n, a.m)
		r.i, r.j, r.k, r.p = s.i, s.j, s.k, s.v
	}
	for start := 0; start < len(r.p); {
		end := start + 1
		for end < len(r.p) && r.i[end] == r.i[start] && r.j[end] == r.j[start] {
			end++
		}
		var sum float64
		for q := start; q < end; q++ {
			sum += r.p[q]
		}
		for q := start; q < end; q++ {
			r.p[q] /= sum
		}
		r.tubeI = append(r.tubeI, r.i[start])
		r.tubeJ = append(r.tubeJ, r.j[start])
		r.tubeStart = append(r.tubeStart, int32(start))
		start = end
	}
	r.tubeStart = append(r.tubeStart, int32(len(r.p)))
	return r
}

// N returns the node-mode dimension.
func (r *RelationTransition) N() int { return r.n }

// M returns the relation-mode dimension.
func (r *RelationTransition) M() int { return r.m }

// NNZ returns the number of explicitly stored probabilities.
func (r *RelationTransition) NNZ() int { return len(r.p) }

// DanglingTubes returns the number of implicit uniform tubes.
func (r *RelationTransition) DanglingTubes() int { return r.n*r.n - len(r.tubeI) }

// At returns r[i,j,k], including the implicit 1/m of dangling tubes.
func (r *RelationTransition) At(i, j, k int) float64 {
	if i < 0 || i >= r.n || j < 0 || j >= r.n || k < 0 || k >= r.m {
		panic(fmt.Sprintf("tensor: RelationTransition.At (%d,%d,%d) out of range", i, j, k))
	}
	pos := sort.Search(len(r.p), func(q int) bool {
		if r.j[q] != int32(j) {
			return r.j[q] >= int32(j)
		}
		if r.i[q] != int32(i) {
			return r.i[q] >= int32(i)
		}
		return r.k[q] >= int32(k)
	})
	if pos < len(r.p) && r.i[pos] == int32(i) && r.j[pos] == int32(j) && r.k[pos] == int32(k) {
		return r.p[pos]
	}
	if r.tubeDangling(i, j) {
		return 1 / float64(r.m)
	}
	return 0
}

func (r *RelationTransition) tubeDangling(i, j int) bool {
	pos := sort.Search(len(r.tubeI), func(q int) bool {
		if r.tubeJ[q] != int32(j) {
			return r.tubeJ[q] >= int32(j)
		}
		return r.tubeI[q] >= int32(i)
	})
	return !(pos < len(r.tubeI) && r.tubeI[pos] == int32(i) && r.tubeJ[pos] == int32(j))
}

// Apply computes dst = R ×̄₁ x ×̄₂ x, i.e.
//
//	dst[k] = Σ_i Σ_j r[i,j,k]·x[i]·x[j].
//
// dst must have length m and must not alias x. Dangling tubes contribute
// (Σx)² − Σ_(stored tubes) x[i]x[j], spread as 1/m per relation, so a
// probability vector x yields a probability vector dst (Theorem 1).
func (r *RelationTransition) Apply(x, dst []float64) {
	r.ApplyPair(x, x, dst)
}

// ApplyPair computes dst[k] = Σ_i Σ_j r[i,j,k]·xi[i]·xj[j] with distinct
// mode-1 and mode-2 vectors; the HAR relevance update contracts R against
// the authority and hub vectors this way. Apply is the xi == xj special
// case.
func (r *RelationTransition) ApplyPair(xi, xj, dst []float64) {
	if len(xi) != r.n || len(xj) != r.n {
		panic(fmt.Sprintf("tensor: RelationTransition.ApplyPair x lengths %d/%d, want %d", len(xi), len(xj), r.n))
	}
	if len(dst) != r.m {
		panic(fmt.Sprintf("tensor: RelationTransition.ApplyPair dst length %d, want %d", len(dst), r.m))
	}
	for q := range dst {
		dst[q] = 0
	}
	var sumI, sumJ float64
	for _, v := range xi {
		sumI += v
	}
	for _, v := range xj {
		sumJ += v
	}
	storedMass := 0.0
	for q, ti := range r.tubeI {
		storedMass += xi[ti] * xj[r.tubeJ[q]]
	}
	for q, pk := range r.k {
		dst[pk] += r.p[q] * xi[r.i[q]] * xj[r.j[q]]
	}
	if dangling := sumI*sumJ - storedMass; dangling > 1e-15 && r.m > 0 {
		u := dangling / float64(r.m)
		for q := range dst {
			dst[q] += u
		}
	}
}

// TubesStochastic reports whether every stored tube sums to one within tol.
func (r *RelationTransition) TubesStochastic(tol float64) bool {
	for start := 0; start < len(r.p); {
		end := start + 1
		for end < len(r.p) && r.i[end] == r.i[start] && r.j[end] == r.j[start] {
			end++
		}
		var sum float64
		for q := start; q < end; q++ {
			if r.p[q] < -tol {
				return false
			}
			sum += r.p[q]
		}
		if math.Abs(sum-1) > tol {
			return false
		}
		start = end
	}
	return true
}
