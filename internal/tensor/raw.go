package tensor

// Raw access to the normalised transition layouts. The artifact codec
// (internal/artifact) serialises a model's O and R into the TMARKAR1
// format and rebuilds them zero-copy from a memory-mapped file, so the
// flat arrays behind NodeTransition and RelationTransition need a door:
// RawArrays exposes them (aliased, read-only by contract) and the
// FromRaw constructors re-wrap externally owned arrays after structural
// validation. Everything the kernels assume about the layouts — sort
// order, alignment of the index/probability slices, tube offsets — is
// re-checked here, because FromRaw inputs come from disk, not from the
// normalisation code that upholds those invariants by construction.

import "fmt"

// NodeRaw is the flat storage of a NodeTransition: the stored nonzero
// probabilities in (k, j, i) order plus the sorted (j, k) list of
// non-dangling columns. All slices alias the transition's own storage —
// callers must not mutate them.
type NodeRaw struct {
	N, M       int
	I, J, K    []int32
	P          []float64
	ColJ, ColK []int32
}

// Raw exposes the transition's storage for serialisation.
func (o *NodeTransition) Raw() NodeRaw {
	return NodeRaw{N: o.n, M: o.m, I: o.i, J: o.j, K: o.k, P: o.p, ColJ: o.colJ, ColK: o.colK}
}

// NodeTransitionFromRaw wraps externally owned arrays (typically views
// into a memory-mapped artifact) as a NodeTransition. The arrays are
// aliased, not copied, and must stay immutable and alive for the
// transition's lifetime. Every structural invariant the kernels rely on
// is validated: aligned lengths, indices in range, strict (k, j, i)
// entry order, strict (k, j) column order, and agreement between the
// entry runs and the column list. Probabilities are checked for
// finiteness and nonnegativity; exact column stochasticity is the
// encoder's job and is covered by the artifact checksum.
func NodeTransitionFromRaw(raw NodeRaw) (*NodeTransition, error) {
	if raw.N < 0 || raw.M < 0 {
		return nil, fmt.Errorf("tensor: raw O shape %dx%d negative", raw.N, raw.M)
	}
	nnz := len(raw.P)
	if len(raw.I) != nnz || len(raw.J) != nnz || len(raw.K) != nnz {
		return nil, fmt.Errorf("tensor: raw O arrays misaligned (i=%d j=%d k=%d p=%d)",
			len(raw.I), len(raw.J), len(raw.K), nnz)
	}
	if len(raw.ColJ) != len(raw.ColK) {
		return nil, fmt.Errorf("tensor: raw O column lists misaligned (%d vs %d)", len(raw.ColJ), len(raw.ColK))
	}
	if len(raw.ColJ) > nnz {
		return nil, fmt.Errorf("tensor: raw O has %d columns but only %d entries", len(raw.ColJ), nnz)
	}
	col := 0
	for q := 0; q < nnz; q++ {
		i, j, k := raw.I[q], raw.J[q], raw.K[q]
		if i < 0 || int(i) >= raw.N || j < 0 || int(j) >= raw.N || k < 0 || int(k) >= raw.M {
			return nil, fmt.Errorf("tensor: raw O entry %d index (%d,%d,%d) out of %dx%dx%d",
				q, i, j, k, raw.N, raw.N, raw.M)
		}
		if q > 0 {
			pk, pj, pi := raw.K[q-1], raw.J[q-1], raw.I[q-1]
			if k < pk || (k == pk && (j < pj || (j == pj && i <= pi))) {
				return nil, fmt.Errorf("tensor: raw O entries not strictly (k,j,i)-sorted at %d", q)
			}
		}
		if !finiteNonneg(raw.P[q]) {
			return nil, fmt.Errorf("tensor: raw O probability %v at entry %d", raw.P[q], q)
		}
		if q == 0 || raw.J[q] != raw.J[q-1] || raw.K[q] != raw.K[q-1] {
			// A new (j, k) column run must be the next column-list entry.
			if col >= len(raw.ColJ) || raw.ColJ[col] != j || raw.ColK[col] != k {
				return nil, fmt.Errorf("tensor: raw O column list disagrees with entries at run %d", col)
			}
			col++
		}
	}
	if col != len(raw.ColJ) {
		return nil, fmt.Errorf("tensor: raw O column list has %d extra columns", len(raw.ColJ)-col)
	}
	return &NodeTransition{
		n: raw.N, m: raw.M,
		i: raw.I, j: raw.J, k: raw.K, p: raw.P,
		colJ: raw.ColJ, colK: raw.ColK,
	}, nil
}

// RelationRaw is the flat storage of a RelationTransition: the stored
// probabilities in (j, i, k) order plus the sorted (j, i) tube list and
// the per-tube entry offsets (len(TubeI)+1, last == nnz).
type RelationRaw struct {
	N, M         int
	I, J, K      []int32
	P            []float64
	TubeI, TubeJ []int32
	TubeStart    []int32
}

// Raw exposes the transition's storage for serialisation.
func (r *RelationTransition) Raw() RelationRaw {
	return RelationRaw{N: r.n, M: r.m, I: r.i, J: r.j, K: r.k, P: r.p,
		TubeI: r.tubeI, TubeJ: r.tubeJ, TubeStart: r.tubeStart}
}

// RelationTransitionFromRaw wraps externally owned arrays as a
// RelationTransition, validating the (j, i, k) sort order, the tube
// list/offset agreement and index ranges. Like NodeTransitionFromRaw it
// aliases the arrays; they must stay immutable.
func RelationTransitionFromRaw(raw RelationRaw) (*RelationTransition, error) {
	if raw.N < 0 || raw.M < 0 {
		return nil, fmt.Errorf("tensor: raw R shape %dx%d negative", raw.N, raw.M)
	}
	nnz := len(raw.P)
	if len(raw.I) != nnz || len(raw.J) != nnz || len(raw.K) != nnz {
		return nil, fmt.Errorf("tensor: raw R arrays misaligned (i=%d j=%d k=%d p=%d)",
			len(raw.I), len(raw.J), len(raw.K), nnz)
	}
	tubes := len(raw.TubeI)
	if len(raw.TubeJ) != tubes {
		return nil, fmt.Errorf("tensor: raw R tube lists misaligned (%d vs %d)", tubes, len(raw.TubeJ))
	}
	if len(raw.TubeStart) != tubes+1 {
		return nil, fmt.Errorf("tensor: raw R has %d tubes but %d offsets (want %d)", tubes, len(raw.TubeStart), tubes+1)
	}
	if tubes > nnz || (nnz > 0 && tubes == 0) {
		return nil, fmt.Errorf("tensor: raw R tube count %d inconsistent with %d entries", tubes, nnz)
	}
	if len(raw.TubeStart) > 0 && int(raw.TubeStart[tubes]) != nnz {
		return nil, fmt.Errorf("tensor: raw R final tube offset %d, want %d", raw.TubeStart[tubes], nnz)
	}
	tube := 0
	for q := 0; q < nnz; q++ {
		i, j, k := raw.I[q], raw.J[q], raw.K[q]
		if i < 0 || int(i) >= raw.N || j < 0 || int(j) >= raw.N || k < 0 || int(k) >= raw.M {
			return nil, fmt.Errorf("tensor: raw R entry %d index (%d,%d,%d) out of %dx%dx%d",
				q, i, j, k, raw.N, raw.N, raw.M)
		}
		if q > 0 {
			pj, pi, pk := raw.J[q-1], raw.I[q-1], raw.K[q-1]
			if j < pj || (j == pj && (i < pi || (i == pi && k <= pk))) {
				return nil, fmt.Errorf("tensor: raw R entries not strictly (j,i,k)-sorted at %d", q)
			}
		}
		if !finiteNonneg(raw.P[q]) {
			return nil, fmt.Errorf("tensor: raw R probability %v at entry %d", raw.P[q], q)
		}
		if q == 0 || raw.I[q] != raw.I[q-1] || raw.J[q] != raw.J[q-1] {
			if tube >= tubes || raw.TubeI[tube] != i || raw.TubeJ[tube] != j || int(raw.TubeStart[tube]) != q {
				return nil, fmt.Errorf("tensor: raw R tube list disagrees with entries at run %d", tube)
			}
			tube++
		}
	}
	if tube != tubes {
		return nil, fmt.Errorf("tensor: raw R tube list has %d extra tubes", tubes-tube)
	}
	return &RelationTransition{
		n: raw.N, m: raw.M,
		i: raw.I, j: raw.J, k: raw.K, p: raw.P,
		tubeI: raw.TubeI, tubeJ: raw.TubeJ, tubeStart: raw.TubeStart,
	}, nil
}

// finiteNonneg reports whether p is a usable probability entry.
func finiteNonneg(p float64) bool {
	// NaN fails both comparisons; +Inf fails the upper bound.
	return p >= 0 && p <= 1.0000001
}
