package tensor

import (
	"math/rand"
	"testing"

	"tmark/internal/par"
)

// randomBlock returns a rows×b block whose columns are independent random
// distributions.
func randomBlock(rng *rand.Rand, rows, b int) []float64 {
	block := make([]float64, rows*b)
	for c := 0; c < b; c++ {
		col := randomVec(rng, rows)
		for i, v := range col {
			block[i*b+c] = v
		}
	}
	return block
}

// column extracts column c of a blocked vector.
func column(block []float64, rows, b, c int) []float64 {
	out := make([]float64, rows)
	for i := range out {
		out[i] = block[i*b+c]
	}
	return out
}

// runBothKernelPaths runs f once with the default kernel selection (the
// AVX2 bodies, on hosts that support them) and once with the scalar
// fallback forced, so both implementations of the b = 4 / 8 loops stay
// covered on every machine.
func runBothKernelPaths(t *testing.T, f func(t *testing.T)) {
	t.Run("default", f)
	old := useBatchASM
	useBatchASM = false
	defer func() { useBatchASM = old }()
	t.Run("scalar", f)
}

// Column c of the blocked node contraction must be bitwise equal to the
// single-vector Apply run on column c alone — the whole point of the
// batched solver is that batching changes layout, never arithmetic.
func TestNodeApplyBatchMatchesSingleColumns(t *testing.T) {
	runBothKernelPaths(t, testNodeApplyBatchMatchesSingleColumns)
}

func testNodeApplyBatchMatchesSingleColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	cases := []*Tensor{
		randomTensor(rng, 60, 4, 700),
		randomTensor(rng, 17, 1, 90),
		func() *Tensor { a := New(12, 3); a.Finalize(); return a }(), // all dangling
		func() *Tensor { a := New(0, 0); a.Finalize(); return a }(),  // empty
	}
	for ci, a := range cases {
		o := NewNodeTransition(a)
		for _, b := range []int{1, 2, 3, 4, 5, 8} {
			x := randomBlock(rng, o.N(), b)
			z := randomBlock(rng, o.M(), b)
			s := NewNodeBatchScratch(o, 1, b)
			dst := make([]float64, o.N()*b)
			o.ApplyBatch(s, x, z, dst, b)
			for c := 0; c < b; c++ {
				want := make([]float64, o.N())
				o.Apply(column(x, o.N(), b, c), column(z, o.M(), b, c), want)
				got := column(dst, o.N(), b, c)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("case %d b=%d col %d: batch row %d = %v, want %v", ci, b, c, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// Same per-column bitwise contract for the relation contraction.
func TestRelationApplyBatchMatchesSingleColumns(t *testing.T) {
	runBothKernelPaths(t, testRelationApplyBatchMatchesSingleColumns)
}

func testRelationApplyBatchMatchesSingleColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	cases := []*Tensor{
		randomTensor(rng, 50, 5, 600),
		func() *Tensor { a := New(9, 4); a.Finalize(); return a }(), // all dangling
		func() *Tensor { a := New(0, 0); a.Finalize(); return a }(), // empty
	}
	for ci, a := range cases {
		r := NewRelationTransition(a)
		for _, b := range []int{1, 2, 3, 4, 8} {
			x := randomBlock(rng, r.N(), b)
			s := NewRelationBatchScratch(r, 1, b)
			dst := make([]float64, r.M()*b)
			r.ApplyBatch(s, x, dst, b)
			for c := 0; c < b; c++ {
				want := make([]float64, r.M())
				r.Apply(column(x, r.N(), b, c), want)
				got := column(dst, r.M(), b, c)
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("case %d b=%d col %d: batch rel %d = %v, want %v", ci, b, c, k, got[k], want[k])
					}
				}
			}
		}
	}
}

// The parallel batched contractions shard by the same boundaries as the
// single-vector parallel kernels (independent of b), so they must also be
// bitwise equal to the single-vector parallel results per column — for
// every worker count, including when b shrinks below the scratch's
// capacity (retired classes).
func TestApplyBatchParallelMatchesSingleColumns(t *testing.T) {
	runBothKernelPaths(t, testApplyBatchParallelMatchesSingleColumns)
}

func testApplyBatchParallelMatchesSingleColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	a := randomTensor(rng, 80, 5, 1200)
	o := NewNodeTransition(a)
	r := NewRelationTransition(a)
	const maxCols = 8
	for _, workers := range []int{2, 3, 8} {
		p := par.New(workers)
		so := NewNodeBatchScratch(o, workers, maxCols)
		sr := NewRelationBatchScratch(r, workers, maxCols)
		soRef := NewNodeApplyScratch(o, workers)
		srRef := NewRelationApplyScratch(r, workers)
		for _, b := range []int{maxCols, 4, 2} { // full block, then compacted ones
			x := randomBlock(rng, o.N(), b)
			z := randomBlock(rng, o.M(), b)
			dst := make([]float64, o.N()*b)
			dstZ := make([]float64, r.M()*b)
			o.ApplyBatchParallel(p, so, x, z, dst, b)
			r.ApplyBatchParallel(p, sr, x, dstZ, b)
			for c := 0; c < b; c++ {
				xc, zc := column(x, o.N(), b, c), column(z, o.M(), b, c)
				want := make([]float64, o.N())
				o.ApplyParallel(p, soRef, xc, zc, want)
				for i, w := range want {
					if got := dst[i*b+c]; got != w {
						t.Fatalf("workers %d b=%d col %d: node row %d = %v, want %v", workers, b, c, i, got, w)
					}
				}
				wantZ := make([]float64, r.M())
				r.ApplyParallel(p, srRef, xc, wantZ)
				for k, w := range wantZ {
					if got := dstZ[k*b+c]; got != w {
						t.Fatalf("workers %d b=%d col %d: rel %d = %v, want %v", workers, b, c, k, got, w)
					}
				}
			}
		}
		p.Close()
	}
}

// Steady-state batched contractions must not allocate: partials, column
// sums and the dispatch task all live in the reusable scratch.
func TestApplyBatchZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	a := randomTensor(rng, 100, 4, 2000)
	o := NewNodeTransition(a)
	r := NewRelationTransition(a)
	const b = 4
	x := randomBlock(rng, o.N(), b)
	z := randomBlock(rng, o.M(), b)
	dst := make([]float64, o.N()*b)
	dstZ := make([]float64, r.M()*b)

	so1 := NewNodeBatchScratch(o, 1, b)
	sr1 := NewRelationBatchScratch(r, 1, b)
	if allocs := testing.AllocsPerRun(50, func() {
		o.ApplyBatch(so1, x, z, dst, b)
	}); allocs != 0 {
		t.Errorf("ApplyBatch allocates %v per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		r.ApplyBatch(sr1, x, dstZ, b)
	}); allocs != 0 {
		t.Errorf("relation ApplyBatch allocates %v per call, want 0", allocs)
	}

	p := par.New(4)
	defer p.Close()
	so := NewNodeBatchScratch(o, 4, b)
	sr := NewRelationBatchScratch(r, 4, b)
	if allocs := testing.AllocsPerRun(50, func() {
		o.ApplyBatchParallel(p, so, x, z, dst, b)
	}); allocs != 0 {
		t.Errorf("ApplyBatchParallel allocates %v per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		r.ApplyBatchParallel(p, sr, x, dstZ, b)
	}); allocs != 0 {
		t.Errorf("relation ApplyBatchParallel allocates %v per call, want 0", allocs)
	}
}
