package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tmark/internal/vec"
)

// tensorSpec is a quick-generatable description of a random tensor plus a
// pair of stochastic vectors.
type tensorSpec struct {
	N, M    uint8
	Entries []uint32 // packed (i, j, k) triples modulo the dims
	Seed    int64
}

// build materialises the spec into a tensor and stochastic x, z.
func (s tensorSpec) build() (*Tensor, []float64, []float64) {
	n := int(s.N%14) + 2
	m := int(s.M%5) + 1
	a := New(n, m)
	for _, e := range s.Entries {
		i := int(e) % n
		j := int(e>>8) % n
		k := int(e>>16) % m
		a.Add(i, j, k, 1+float64(e%7))
	}
	a.Finalize()
	rng := rand.New(rand.NewSource(s.Seed))
	return a, randomStochastic(rng, n), randomStochastic(rng, m)
}

// Property (Theorem 1 substrate): for any tensor and any stochastic x, z,
// both contractions return probability vectors.
func TestQuickContractionsPreserveSimplex(t *testing.T) {
	f := func(s tensorSpec) bool {
		a, x, z := s.build()
		o := NewNodeTransition(a)
		r := NewRelationTransition(a)
		dx := make([]float64, a.N())
		o.Apply(x, z, dx)
		if !vec.IsStochastic(dx, 1e-8) {
			return false
		}
		dz := make([]float64, a.M())
		r.Apply(x, dz)
		return vec.IsStochastic(dz, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: normalisation preserves the support of A — every stored
// probability is positive exactly where A is nonzero.
func TestQuickNormalisationKeepsSupport(t *testing.T) {
	f := func(s tensorSpec) bool {
		a, _, _ := s.build()
		o := NewNodeTransition(a)
		r := NewRelationTransition(a)
		if o.NNZ() != a.NNZ() || r.NNZ() != a.NNZ() {
			return false
		}
		ok := true
		a.Each(func(i, j, k int, v float64) {
			if o.At(i, j, k) <= 0 || r.At(i, j, k) <= 0 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Finalize is order-independent — inserting the same entries in
// a different order yields an identical tensor.
func TestQuickFinalizeOrderIndependent(t *testing.T) {
	f := func(s tensorSpec, shuffleSeed int64) bool {
		n := int(s.N%14) + 2
		m := int(s.M%5) + 1
		type entry struct {
			i, j, k int
			v       float64
		}
		entries := make([]entry, 0, len(s.Entries))
		for _, e := range s.Entries {
			entries = append(entries, entry{int(e) % n, int(e>>8) % n, int(e>>16) % m, 1 + float64(e%7)})
		}
		a := New(n, m)
		for _, e := range entries {
			a.Add(e.i, e.j, e.k, e.v)
		}
		a.Finalize()
		rng := rand.New(rand.NewSource(shuffleSeed))
		rng.Shuffle(len(entries), func(x, y int) { entries[x], entries[y] = entries[y], entries[x] })
		b := New(n, m)
		for _, e := range entries {
			b.Add(e.i, e.j, e.k, e.v)
		}
		b.Finalize()
		if a.NNZ() != b.NNZ() {
			return false
		}
		same := true
		a.Each(func(i, j, k int, v float64) {
			if math.Abs(b.At(i, j, k)-v) > 1e-12 {
				same = false
			}
		})
		return same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
