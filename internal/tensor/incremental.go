package tensor

// Incremental maintenance of the normalised transition layouts. A batch
// of edge deltas touches a handful of adjacency coordinates; everything
// outside the affected (j,k) columns of O and (i,j) tubes of R keeps the
// exact probability bytes it had. The merge below rebuilds the raw COO
// arrays around the changed coordinates (O(nnz+b) integer work, fresh
// arrays so served models are never mutated in place), and the
// renormalisers recompute only the touched runs — accumulating the run
// sum in the same ascending entry order NewNodeTransition /
// NewRelationTransition use, so a touched run is bitwise identical to a
// from-scratch rebuild of the mutated graph, and an untouched run is a
// straight copy of the previous probabilities.

import "fmt"

// COO is a raw coordinate-form slice set: the adjacency values behind a
// finalized Tensor, or a reordering of them. The arrays are owned by
// whoever built them and are immutable by contract once published.
type COO struct {
	N, M    int
	I, J, K []int32
	V       []float64
}

// COOView exposes the finalized tensor's entries in their native
// (k, j, i) order. The slices alias the tensor's storage.
func (t *Tensor) COOView() COO {
	t.mustBeFinalized("COOView")
	return COO{N: t.n, M: t.m, I: t.i, J: t.j, K: t.k, V: t.v}
}

// NNZ returns the number of stored entries.
func (c COO) NNZ() int { return len(c.V) }

// SortedJIK returns a fresh copy of the entries re-sorted into
// (j, i, k) order — the RelationTransition layout.
func (c COO) SortedJIK() COO {
	buf := newCooBuf(len(c.V))
	copy(buf.i, c.I)
	copy(buf.j, c.J)
	copy(buf.k, c.K)
	copy(buf.v, c.V)
	if len(c.V) > 0 {
		buf = sortJIK(buf, c.N, c.M)
	}
	return COO{N: c.N, M: c.M, I: buf.i, J: buf.j, K: buf.k, V: buf.v}
}

// AtKJI looks up the raw value at (i, j, k) in a (k, j, i)-ordered COO.
func (c COO) AtKJI(i, j, k int32) (float64, bool) {
	lo, hi := 0, len(c.V)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.K[mid] < k || (c.K[mid] == k && (c.J[mid] < j || (c.J[mid] == j && c.I[mid] < i))) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.V) && c.I[lo] == i && c.J[lo] == j && c.K[lo] == k {
		return c.V[lo], true
	}
	return 0, false
}

// Irreducible reports whether the aggregated directed graph of the
// entries is strongly connected, matching Tensor.Irreducible.
func (c COO) Irreducible() bool {
	if c.N == 0 {
		return false
	}
	fwd := make([][]int32, c.N)
	rev := make([][]int32, c.N)
	for q := range c.V {
		fwd[c.J[q]] = append(fwd[c.J[q]], c.I[q])
		rev[c.I[q]] = append(rev[c.I[q]], c.J[q])
	}
	return reachesAll(fwd, 0) && reachesAll(rev, 0)
}

// Change is the final effect of a delta batch on one adjacency
// coordinate: V > 0 sets the raw value (inserting the entry if absent),
// V == 0 removes an existing entry.
type Change struct {
	I, J, K int32
	V       float64
}

// MergeKJI merges strictly (k, j, i)-sorted changes into a
// (k, j, i)-ordered base, returning freshly allocated arrays. Removing
// an absent coordinate or presenting misordered, duplicate, out-of-range
// or non-finite changes is an error and leaves nothing published.
func MergeKJI(a COO, changes []Change) (COO, error) {
	return mergeSorted(a, changes, keyKJI)
}

// MergeJIK is MergeKJI for the (j, i, k)-ordered relation layout; the
// changes must be strictly (j, i, k)-sorted.
func MergeJIK(a COO, changes []Change) (COO, error) {
	return mergeSorted(a, changes, keyJIK)
}

// keyKJI and keyJIK compare a base entry against a change coordinate in
// the respective lexicographic sort order: negative when (i1,j1,k1)
// precedes, zero when equal, positive when it follows.
func keyKJI(i1, j1, k1, i2, j2, k2 int32) int {
	if k1 != k2 {
		return int(k1 - k2)
	}
	if j1 != j2 {
		return int(j1 - j2)
	}
	return int(i1 - i2)
}

func keyJIK(i1, j1, k1, i2, j2, k2 int32) int {
	if j1 != j2 {
		return int(j1 - j2)
	}
	if i1 != i2 {
		return int(i1 - i2)
	}
	return int(k1 - k2)
}

func mergeSorted(a COO, changes []Change, cmp func(i1, j1, k1, i2, j2, k2 int32) int) (COO, error) {
	for c := range changes {
		ch := changes[c]
		if ch.I < 0 || int(ch.I) >= a.N || ch.J < 0 || int(ch.J) >= a.N || ch.K < 0 || int(ch.K) >= a.M {
			return COO{}, fmt.Errorf("tensor: change %d coordinate (%d,%d,%d) out of %dx%dx%d",
				c, ch.I, ch.J, ch.K, a.N, a.N, a.M)
		}
		if !(ch.V >= 0) || ch.V > maxFinite {
			return COO{}, fmt.Errorf("tensor: change %d value %v not a finite nonnegative weight", c, ch.V)
		}
		if c > 0 && cmp(changes[c-1].I, changes[c-1].J, changes[c-1].K, ch.I, ch.J, ch.K) >= 0 {
			return COO{}, fmt.Errorf("tensor: changes not strictly sorted at %d", c)
		}
	}
	out := COO{
		N: a.N, M: a.M,
		I: make([]int32, 0, len(a.V)+len(changes)),
		J: make([]int32, 0, len(a.V)+len(changes)),
		K: make([]int32, 0, len(a.V)+len(changes)),
		V: make([]float64, 0, len(a.V)+len(changes)),
	}
	emit := func(i, j, k int32, v float64) {
		out.I = append(out.I, i)
		out.J = append(out.J, j)
		out.K = append(out.K, k)
		out.V = append(out.V, v)
	}
	p, c := 0, 0
	for p < len(a.V) || c < len(changes) {
		switch {
		case c == len(changes):
			emit(a.I[p], a.J[p], a.K[p], a.V[p])
			p++
		case p == len(a.V):
			if changes[c].V == 0 {
				return COO{}, fmt.Errorf("tensor: change removes absent entry (%d,%d,%d)",
					changes[c].I, changes[c].J, changes[c].K)
			}
			emit(changes[c].I, changes[c].J, changes[c].K, changes[c].V)
			c++
		default:
			d := cmp(a.I[p], a.J[p], a.K[p], changes[c].I, changes[c].J, changes[c].K)
			switch {
			case d < 0:
				emit(a.I[p], a.J[p], a.K[p], a.V[p])
				p++
			case d > 0:
				if changes[c].V == 0 {
					return COO{}, fmt.Errorf("tensor: change removes absent entry (%d,%d,%d)",
						changes[c].I, changes[c].J, changes[c].K)
				}
				emit(changes[c].I, changes[c].J, changes[c].K, changes[c].V)
				c++
			default:
				if changes[c].V != 0 {
					emit(changes[c].I, changes[c].J, changes[c].K, changes[c].V)
				}
				p++
				c++
			}
		}
	}
	return out, nil
}

// maxFinite rejects +Inf (and, via the >= 0 test, NaN) while accepting
// every finite weight the ingest validators let through.
const maxFinite = 1.7976931348623157e308

// RenormalizeNode builds the NodeRaw of the merged (k, j, i)-ordered
// base a: a column (j, k) for which touched returns true has its
// probabilities recomputed from a's raw values exactly as
// NewNodeTransition would; every other column's probability run is
// copied bitwise from prev. The index arrays alias a's. prev must be
// the raw view of the transition built from a before the merge —
// untouched runs are cross-checked entry for entry and a disagreement
// panics, because it means the caller's touched set was wrong.
func RenormalizeNode(a COO, prev NodeRaw, touched func(j, k int32) bool) NodeRaw {
	out := NodeRaw{
		N: a.N, M: a.M,
		I: a.I, J: a.J, K: a.K,
		P: make([]float64, len(a.V)),
	}
	prevRun := 0 // entry offset of the current run in prev
	for start := 0; start < len(a.V); {
		end := start + 1
		for end < len(a.V) && a.J[end] == a.J[start] && a.K[end] == a.K[start] {
			end++
		}
		j, k := a.J[start], a.K[start]
		if touched(j, k) {
			var sum float64
			for q := start; q < end; q++ {
				sum += a.V[q]
			}
			for q := start; q < end; q++ {
				out.P[q] = a.V[q] / sum
			}
		} else {
			// Skip prev runs the merge removed; they must all be touched.
			for prevRun < len(prev.P) && lessKJ(prev.K[prevRun], prev.J[prevRun], k, j) {
				pj, pk := prev.J[prevRun], prev.K[prevRun]
				if !touched(pj, pk) {
					panic(fmt.Sprintf("tensor: untouched O column (%d,%d) vanished in merge", pj, pk))
				}
				for prevRun < len(prev.P) && prev.J[prevRun] == pj && prev.K[prevRun] == pk {
					prevRun++
				}
			}
			if prevRun >= len(prev.P) || prev.J[prevRun] != j || prev.K[prevRun] != k {
				panic(fmt.Sprintf("tensor: untouched O column (%d,%d) missing from previous layout", j, k))
			}
			for q := start; q < end; q++ {
				if prevRun >= len(prev.P) || prev.I[prevRun] != a.I[q] || prev.J[prevRun] != j || prev.K[prevRun] != k {
					panic(fmt.Sprintf("tensor: untouched O column (%d,%d) entries changed", j, k))
				}
				out.P[q] = prev.P[prevRun]
				prevRun++
			}
			if prevRun < len(prev.P) && prev.J[prevRun] == j && prev.K[prevRun] == k {
				panic(fmt.Sprintf("tensor: untouched O column (%d,%d) lost entries", j, k))
			}
		}
		out.ColJ = append(out.ColJ, j)
		out.ColK = append(out.ColK, k)
		start = end
	}
	return out
}

func lessKJ(k1, j1, k2, j2 int32) bool {
	return k1 < k2 || (k1 == k2 && j1 < j2)
}

// RenormalizeRelation is RenormalizeNode for the (j, i, k)-ordered
// relation layout ar: touched (i, j) tubes are recomputed from ar's raw
// values exactly as NewRelationTransition would, untouched tubes copy
// prev's probability bytes, and the tube list/offsets are rebuilt.
func RenormalizeRelation(ar COO, prev RelationRaw, touched func(i, j int32) bool) RelationRaw {
	out := RelationRaw{
		N: ar.N, M: ar.M,
		I: ar.I, J: ar.J, K: ar.K,
		P: make([]float64, len(ar.V)),
	}
	prevRun := 0
	for start := 0; start < len(ar.V); {
		end := start + 1
		for end < len(ar.V) && ar.I[end] == ar.I[start] && ar.J[end] == ar.J[start] {
			end++
		}
		i, j := ar.I[start], ar.J[start]
		if touched(i, j) {
			var sum float64
			for q := start; q < end; q++ {
				sum += ar.V[q]
			}
			for q := start; q < end; q++ {
				out.P[q] = ar.V[q] / sum
			}
		} else {
			for prevRun < len(prev.P) && lessJI(prev.J[prevRun], prev.I[prevRun], j, i) {
				pi, pj := prev.I[prevRun], prev.J[prevRun]
				if !touched(pi, pj) {
					panic(fmt.Sprintf("tensor: untouched R tube (%d,%d) vanished in merge", pi, pj))
				}
				for prevRun < len(prev.P) && prev.I[prevRun] == pi && prev.J[prevRun] == pj {
					prevRun++
				}
			}
			if prevRun >= len(prev.P) || prev.I[prevRun] != i || prev.J[prevRun] != j {
				panic(fmt.Sprintf("tensor: untouched R tube (%d,%d) missing from previous layout", i, j))
			}
			for q := start; q < end; q++ {
				if prevRun >= len(prev.P) || prev.I[prevRun] != i || prev.J[prevRun] != j || prev.K[prevRun] != ar.K[q] {
					panic(fmt.Sprintf("tensor: untouched R tube (%d,%d) entries changed", i, j))
				}
				out.P[q] = prev.P[prevRun]
				prevRun++
			}
			if prevRun < len(prev.P) && prev.I[prevRun] == i && prev.J[prevRun] == j {
				panic(fmt.Sprintf("tensor: untouched R tube (%d,%d) lost entries", i, j))
			}
		}
		out.TubeI = append(out.TubeI, i)
		out.TubeJ = append(out.TubeJ, j)
		out.TubeStart = append(out.TubeStart, int32(start))
		start = end
	}
	out.TubeStart = append(out.TubeStart, int32(len(ar.V)))
	return out
}

func lessJI(j1, i1, j2, i2 int32) bool {
	return j1 < j2 || (j1 == j2 && i1 < i2)
}
