// AVX2 inner loops of the blocked tensor contractions. See
// batch_amd64.go for the bitwise contract: VMULPD/VADDPD lanes perform
// exactly the scalar IEEE-754 double ops of cooScatterBatch /
// pairMassBatch, in the same order, with no FMA contraction.

#include "textflag.h"

// func cpuSupportsAVX2() bool
TEXT ·cpuSupportsAVX2(SB), NOSPLIT, $0-1
	// Highest function parameter must reach leaf 7.
	MOVL $0, AX
	XORL CX, CX
	CPUID
	CMPL AX, $7
	JL   noavx2
	// Leaf 1: OSXSAVE (ECX bit 27) and AVX (ECX bit 28).
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $0x18000000, R8
	CMPL R8, $0x18000000
	JNE  noavx2
	// XCR0: XMM (bit 1) and YMM (bit 2) state enabled by the OS.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx2
	// Leaf 7 sub-leaf 0: AVX2 (EBX bit 5).
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $0x20, BX
	JZ   noavx2
	MOVB $1, ret+0(FP)
	RET

noavx2:
	MOVB $0, ret+0(FP)
	RET

// func cooScatterAVX4(dst, a, bb *float64, di, ai, bi *int32, p *float64, n int)
//
// Per entry q: Y0 = broadcast p[q]; Y0 = Y0 * a-row; Y0 = Y0 * b-row
// (cached in Y1, reloaded only when bi[q] changes); dst-row += Y0 —
// the exact (p·a)·b then d+w order of the scalar case-4 body.
TEXT ·cooScatterAVX4(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ bb+16(FP), R15
	MOVQ di+24(FP), BX
	MOVQ ai+32(FP), DX
	MOVQ bi+40(FP), R9
	MOVQ p+48(FP), R10
	MOVQ n+56(FP), R13
	XORQ CX, CX
	MOVQ $-1, R14

scatter4:
	MOVL (R9)(CX*4), R8
	CMPQ R8, R14
	JE   bsame4
	MOVQ R8, R14
	SHLQ $5, R8
	VMOVUPD (R15)(R8*1), Y1

bsame4:
	MOVL (DX)(CX*4), R8
	SHLQ $5, R8
	VBROADCASTSD (R10)(CX*8), Y0
	VMOVUPD (SI)(R8*1), Y2
	VMULPD Y2, Y0, Y0
	VMULPD Y1, Y0, Y0
	MOVL (BX)(CX*4), R8
	SHLQ $5, R8
	VMOVUPD (DI)(R8*1), Y2
	VADDPD Y0, Y2, Y2
	VMOVUPD Y2, (DI)(R8*1)
	INCQ CX
	CMPQ CX, R13
	JL   scatter4
	VZEROUPPER
	RET

// func cooScatterAVX8(dst, a, bb *float64, di, ai, bi *int32, p *float64, n int)
//
// The cols = 8 variant: rows span two 256-bit lanes (Y1/Y4 cache the
// b-row halves).
TEXT ·cooScatterAVX8(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ bb+16(FP), R15
	MOVQ di+24(FP), BX
	MOVQ ai+32(FP), DX
	MOVQ bi+40(FP), R9
	MOVQ p+48(FP), R10
	MOVQ n+56(FP), R13
	XORQ CX, CX
	MOVQ $-1, R14

scatter8:
	MOVL (R9)(CX*4), R8
	CMPQ R8, R14
	JE   bsame8
	MOVQ R8, R14
	SHLQ $6, R8
	VMOVUPD (R15)(R8*1), Y1
	VMOVUPD 32(R15)(R8*1), Y4

bsame8:
	MOVL (DX)(CX*4), R8
	SHLQ $6, R8
	VBROADCASTSD (R10)(CX*8), Y0
	VMOVUPD (SI)(R8*1), Y2
	VMOVUPD 32(SI)(R8*1), Y5
	VMULPD Y2, Y0, Y2
	VMULPD Y5, Y0, Y5
	VMULPD Y1, Y2, Y2
	VMULPD Y4, Y5, Y5
	MOVL (BX)(CX*4), R8
	SHLQ $6, R8
	VMOVUPD (DI)(R8*1), Y3
	VMOVUPD 32(DI)(R8*1), Y6
	VADDPD Y2, Y3, Y3
	VADDPD Y5, Y6, Y6
	VMOVUPD Y3, (DI)(R8*1)
	VMOVUPD Y6, 32(DI)(R8*1)
	INCQ CX
	CMPQ CX, R13
	JL   scatter8
	VZEROUPPER
	RET

// func pairMassAVX4(a, bb *float64, ai, bi *int32, n int, mass *float64)
//
// Per pair q: Y3 += a-row * b-row (cached b-row in Y1) — the exact a·b
// then m+w order of the scalar case-4 body; Y3 starts from mass and is
// stored back, like the scalar register accumulators.
TEXT ·pairMassAVX4(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), SI
	MOVQ bb+8(FP), R15
	MOVQ ai+16(FP), DX
	MOVQ bi+24(FP), R9
	MOVQ n+32(FP), R13
	MOVQ mass+40(FP), R12
	VMOVUPD (R12), Y3
	XORQ CX, CX
	MOVQ $-1, R14

mass4:
	MOVL (R9)(CX*4), R8
	CMPQ R8, R14
	JE   msame4
	MOVQ R8, R14
	SHLQ $5, R8
	VMOVUPD (R15)(R8*1), Y1

msame4:
	MOVL (DX)(CX*4), R8
	SHLQ $5, R8
	VMOVUPD (SI)(R8*1), Y2
	VMULPD Y1, Y2, Y2
	VADDPD Y2, Y3, Y3
	INCQ CX
	CMPQ CX, R13
	JL   mass4
	VMOVUPD Y3, (R12)
	VZEROUPPER
	RET

// func pairMassAVX8(a, bb *float64, ai, bi *int32, n int, mass *float64)
TEXT ·pairMassAVX8(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), SI
	MOVQ bb+8(FP), R15
	MOVQ ai+16(FP), DX
	MOVQ bi+24(FP), R9
	MOVQ n+32(FP), R13
	MOVQ mass+40(FP), R12
	VMOVUPD (R12), Y3
	VMOVUPD 32(R12), Y6
	XORQ CX, CX
	MOVQ $-1, R14

mass8:
	MOVL (R9)(CX*4), R8
	CMPQ R8, R14
	JE   msame8
	MOVQ R8, R14
	SHLQ $6, R8
	VMOVUPD (R15)(R8*1), Y1
	VMOVUPD 32(R15)(R8*1), Y4

msame8:
	MOVL (DX)(CX*4), R8
	SHLQ $6, R8
	VMOVUPD (SI)(R8*1), Y2
	VMOVUPD 32(SI)(R8*1), Y5
	VMULPD Y1, Y2, Y2
	VMULPD Y4, Y5, Y5
	VADDPD Y2, Y3, Y3
	VADDPD Y5, Y6, Y6
	INCQ CX
	CMPQ CX, R13
	JL   mass8
	VMOVUPD Y3, (R12)
	VMOVUPD Y6, 32(R12)
	VZEROUPPER
	RET
