package tensor

import (
	"math/rand"
	"testing"

	"tmark/internal/par"
)

// The cross-process sharding contract: slicing a tensor into M shards,
// running each shard's ApplyPartial serially and folding the partials
// with the Reduce helpers must be bitwise identical to
// ApplyBatchParallel on an M-worker pool — for M = 1 (where the pool
// path falls back to the serial ApplyBatch) through M = 4, on both
// kernel implementations, including compacted column counts.
func TestShardApplyReduceMatchesParallel(t *testing.T) {
	runBothKernelPaths(t, testShardApplyReduceMatchesParallel)
}

func testShardApplyReduceMatchesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	cases := []*Tensor{
		randomTensor(rng, 80, 5, 1200),
		randomTensor(rng, 11, 1, 40),
		func() *Tensor { a := New(12, 3); a.Finalize(); return a }(), // all dangling
	}
	const maxCols = 8
	for ci, a := range cases {
		o := NewNodeTransition(a)
		r := NewRelationTransition(a)
		n, m := o.N(), o.M()
		for _, of := range []int{1, 2, 3, 4} {
			// Reference: the in-process parallel path at `of` workers.
			p := par.New(of)
			so := NewNodeBatchScratch(o, of, maxCols)
			sr := NewRelationBatchScratch(r, of, maxCols)
			for _, b := range []int{maxCols, 4, 3, 1} {
				x := randomBlock(rng, n, b)
				z := randomBlock(rng, m, b)
				want := make([]float64, n*b)
				wantZ := make([]float64, m*b)
				o.ApplyBatchParallel(p, so, x, z, want, b)
				r.ApplyBatchParallel(p, sr, x, wantZ, b)

				parts := make([][]float64, of)
				sumX := make([][]float64, of)
				sumZ := make([][]float64, of)
				mass := make([][]float64, of)
				rParts := make([][]float64, of)
				rSumI := make([][]float64, of)
				rMass := make([][]float64, of)
				for s := 0; s < of; s++ {
					nsh := o.Shard(s, of)
					if err := nsh.Validate(); err != nil {
						t.Fatalf("case %d of=%d shard %d: node validate: %v", ci, of, s, err)
					}
					parts[s] = make([]float64, n*b)
					sumX[s] = make([]float64, b)
					sumZ[s] = make([]float64, b)
					mass[s] = make([]float64, b)
					nsh.ApplyPartial(x, z, parts[s], b, sumX[s], sumZ[s], mass[s], !useBatchASM)
					rsh := r.Shard(s, of)
					if err := rsh.Validate(); err != nil {
						t.Fatalf("case %d of=%d shard %d: relation validate: %v", ci, of, s, err)
					}
					rParts[s] = make([]float64, m*b)
					rSumI[s] = make([]float64, b)
					rMass[s] = make([]float64, b)
					rsh.ApplyPartial(x, rParts[s], b, rSumI[s], rMass[s], !useBatchASM)
				}
				got := make([]float64, n*b)
				gotZ := make([]float64, m*b)
				u := make([]float64, b)
				ReduceNodePartials(got, u, n, b, parts, sumX, sumZ, mass)
				ReduceRelationPartials(gotZ, u, m, b, rParts, rSumI, rMass)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("case %d of=%d b=%d: node cell %d = %v, want %v", ci, of, b, i, got[i], want[i])
					}
				}
				for i := range wantZ {
					if gotZ[i] != wantZ[i] {
						t.Fatalf("case %d of=%d b=%d: relation cell %d = %v, want %v", ci, of, b, i, gotZ[i], wantZ[i])
					}
				}
			}
			p.Close()
		}
	}
}

// Shard slices must cover the full entry stream and pair lists exactly
// once, in order — the partition is a reslicing, never a copy or a gap.
func TestShardCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	a := randomTensor(rng, 40, 3, 500)
	o := NewNodeTransition(a)
	r := NewRelationTransition(a)
	for _, of := range []int{1, 2, 5} {
		var entries, cols, rEntries, tubes int
		for s := 0; s < of; s++ {
			nsh := o.Shard(s, of)
			entries += len(nsh.P)
			cols += len(nsh.ColJ)
			rsh := r.Shard(s, of)
			rEntries += len(rsh.P)
			tubes += len(rsh.TubeI)
			if s > 0 {
				prev := o.Shard(s-1, of)
				if prev.XHi != nsh.XLo || prev.ZHi != nsh.ZLo {
					t.Fatalf("of=%d shard %d: node ranges not contiguous", of, s)
				}
			}
		}
		if entries != o.NNZ() || rEntries != r.NNZ() {
			t.Fatalf("of=%d: shards cover %d/%d entries, want %d/%d", of, entries, rEntries, o.NNZ(), r.NNZ())
		}
	}
}
