package tensor

import (
	"math"
	"math/rand"
	"testing"

	"tmark/internal/fault"
)

// Scratch.NoASM must select the scalar bodies: a demoted run has to be
// bitwise equal to a run with the assembly kernels disabled globally,
// for every column width including the AVX-accelerated 4 and 8.
func TestNoASMDemotionMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	a := randomTensor(rng, 48, 3, 500)
	o := NewNodeTransition(a)
	r := NewRelationTransition(a)
	for _, b := range []int{1, 4, 8} {
		x := randomBlock(rng, o.N(), b)
		z := randomBlock(rng, o.M(), b)

		// Reference: global scalar selection.
		old := useBatchASM
		useBatchASM = false
		wantN := make([]float64, o.N()*b)
		o.ApplyBatch(NewNodeBatchScratch(o, 1, b), x, z, wantN, b)
		wantR := make([]float64, r.M()*b)
		r.ApplyBatch(NewRelationBatchScratch(r, 1, b), x, wantR, b)
		useBatchASM = old

		// Demoted: default selection with NoASM set on the scratch.
		sn := NewNodeBatchScratch(o, 1, b)
		sn.NoASM = true
		gotN := make([]float64, o.N()*b)
		o.ApplyBatch(sn, x, z, gotN, b)
		sr := NewRelationBatchScratch(r, 1, b)
		sr.NoASM = true
		gotR := make([]float64, r.M()*b)
		r.ApplyBatch(sr, x, gotR, b)

		for i := range wantN {
			if gotN[i] != wantN[i] {
				t.Fatalf("b=%d node demoted[%d] = %v, want scalar %v", b, i, gotN[i], wantN[i])
			}
		}
		for i := range wantR {
			if gotR[i] != wantR[i] {
				t.Fatalf("b=%d relation demoted[%d] = %v, want scalar %v", b, i, gotR[i], wantR[i])
			}
		}
	}
}

// The kernel fault points must hand the hook the real destination block,
// so a chaos test can poison exactly one iteration's output.
func TestKernelFaultPointCorruptsOutput(t *testing.T) {
	t.Cleanup(fault.Reset)
	rng := rand.New(rand.NewSource(405))
	a := randomTensor(rng, 30, 2, 200)
	o := NewNodeTransition(a)
	const b = 4
	x := randomBlock(rng, o.N(), b)
	z := randomBlock(rng, o.M(), b)
	s := NewNodeBatchScratch(o, 1, b)
	dst := make([]float64, o.N()*b)

	fired := 0
	remove := fault.Inject(fault.TensorNodeBatch, func(args ...any) {
		fired++
		block := args[0].([]float64)
		if cols := args[1].(int); cols != b {
			t.Fatalf("fault point cols = %d, want %d", cols, b)
		}
		block[0] = math.NaN()
	})
	defer remove()

	o.ApplyBatch(s, x, z, dst, b)
	if fired != 1 {
		t.Fatalf("fault point fired %d times, want 1", fired)
	}
	if !math.IsNaN(dst[0]) {
		t.Fatalf("hook mutation did not reach dst: dst[0] = %v", dst[0])
	}
}
