package tensor

// cooBuf is an aligned set of COO slices moved together by the counting
// passes below.
type cooBuf struct {
	i, j, k []int32
	v       []float64
}

func newCooBuf(nnz int) cooBuf {
	return cooBuf{
		i: make([]int32, nnz),
		j: make([]int32, nnz),
		k: make([]int32, nnz),
		v: make([]float64, nnz),
	}
}

// countingPass stably reorders src into dst by key (which must alias one
// of src's index slices) using nkeys buckets. This is one digit of an LSD
// radix sort: O(nnz + nkeys) per pass with no comparator calls, replacing
// the sort.Slice-over-permutation build that dominated tensor
// construction.
func countingPass(key []int32, nkeys int, src, dst cooBuf) {
	counts := make([]int, nkeys+1)
	for _, b := range key {
		counts[b+1]++
	}
	for b := 1; b <= nkeys; b++ {
		counts[b] += counts[b-1]
	}
	for p, b := range key {
		pos := counts[b]
		counts[b]++
		dst.i[pos] = src.i[p]
		dst.j[pos] = src.j[p]
		dst.k[pos] = src.k[p]
		dst.v[pos] = src.v[p]
	}
}

// sortKJI sorts the entries by (k, j, i) via three stable counting passes
// (least-significant key first). The contents of e are consumed as scratch;
// the returned buffer holds the sorted entries.
func sortKJI(e cooBuf, n, m int) cooBuf {
	tmp := newCooBuf(len(e.v))
	countingPass(e.i, n, e, tmp)
	countingPass(tmp.j, n, tmp, e)
	countingPass(e.k, m, e, tmp)
	return tmp
}

// sortJIK sorts the entries by (j, i, k); the RelationTransition layout.
// The contents of e are consumed as scratch.
func sortJIK(e cooBuf, n, m int) cooBuf {
	tmp := newCooBuf(len(e.v))
	countingPass(e.k, m, e, tmp)
	countingPass(tmp.i, n, tmp, e)
	countingPass(e.j, n, e, tmp)
	return tmp
}
