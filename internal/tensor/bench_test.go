package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// The contractions are the inner loop of every T-Mark iteration; these
// benches verify the O(D) cost directly at several sparsities.
func BenchmarkNodeTransitionApply(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, nnz := range []int{1_000, 10_000, 100_000} {
		n, m := 1000, 20
		a := randomTensor(rng, n, m, nnz)
		o := NewNodeTransition(a)
		x := randomStochastic(rng, n)
		z := randomStochastic(rng, m)
		dst := make([]float64, n)
		b.Run(fmt.Sprintf("nnz=%d", nnz), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				o.Apply(x, z, dst)
			}
		})
	}
}

func BenchmarkRelationTransitionApply(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n, m := 1000, 20
	a := randomTensor(rng, n, m, 50_000)
	r := NewRelationTransition(a)
	x := randomStochastic(rng, n)
	dst := make([]float64, m)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Apply(x, dst)
	}
}

func BenchmarkFinalize(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n, m, nnz := 1000, 20, 50_000
	type entry struct {
		i, j, k int
		v       float64
	}
	entries := make([]entry, nnz)
	for p := range entries {
		entries[p] = entry{rng.Intn(n), rng.Intn(n), rng.Intn(m), 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := New(n, m)
		for _, e := range entries {
			a.Add(e.i, e.j, e.k, e.v)
		}
		a.Finalize()
	}
}

func BenchmarkTransitionConstruction(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := randomTensor(rng, 1000, 20, 50_000)
	b.Run("node", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			NewNodeTransition(a)
		}
	})
	b.Run("relation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			NewRelationTransition(a)
		}
	})
}
