package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// collapsedMatvec evaluates the collapsed operator the way the fast tier
// does: explicit triplets plus the uniform spread of the per-source
// dangling weights.
func collapsedMatvec(n int, rows, cols []int32, vals, dangle, x []float64) []float64 {
	dst := make([]float64, n)
	for q := range rows {
		dst[rows[q]] += vals[q] * x[cols[q]]
	}
	var lost float64
	for j, d := range dangle {
		lost += d * x[j]
	}
	uni := lost / float64(n)
	for i := range dst {
		dst[i] += uni
	}
	return dst
}

// The collapsed matrix must reproduce the tensor contraction with z
// frozen: P·x + dangling spread = O ×̄₁ x ×̄₃ z̄ for any x.
func TestCollapseZMatchesFrozenContraction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []*Tensor{
		randomTensor(rng, 50, 4, 600),
		randomTensor(rng, 13, 1, 40),
		func() *Tensor { a := New(9, 3); a.Finalize(); return a }(), // all dangling
	}
	for ci, a := range cases {
		o := NewNodeTransition(a)
		zbar := randomVec(rng, o.M())
		rows, cols, vals, dangle := o.CollapseZ(zbar)
		x := randomVec(rng, o.N())

		want := make([]float64, o.N())
		o.Apply(x, zbar, want)
		got := collapsedMatvec(o.N(), rows, cols, vals, dangle, x)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("case %d row %d: collapsed %v, tensor %v", ci, i, got[i], want[i])
			}
		}
	}
}

// With a distribution z̄ every column of the collapsed operator is again
// stochastic: stored entries plus the dangling weight sum to one.
func TestCollapseZColumnsStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randomTensor(rng, 40, 5, 500)
	o := NewNodeTransition(a)
	zbar := randomVec(rng, o.M())
	rows, cols, vals, dangle := o.CollapseZ(zbar)
	_ = rows
	colSum := make([]float64, o.N())
	copy(colSum, dangle)
	for q := range cols {
		colSum[cols[q]] += vals[q]
	}
	for j, s := range colSum {
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("column %d mass %v, want 1", j, s)
		}
		if dangle[j] < 0 {
			t.Fatalf("column %d negative dangling weight %v", j, dangle[j])
		}
	}
}

func TestCollapseZWrongLengthPanics(t *testing.T) {
	a := New(4, 2)
	a.Add(0, 1, 0, 1)
	a.Finalize()
	o := NewNodeTransition(a)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong zbar length")
		}
	}()
	o.CollapseZ(make([]float64, 3))
}
