package tensor

import (
	"math"
	"math/rand"
	"testing"

	"tmark/internal/par"
)

// randomVec returns a random distribution (uses the shared
// randomStochastic helper, tolerating n == 0).
func randomVec(rng *rand.Rand, n int) []float64 {
	if n == 0 {
		return nil
	}
	return randomStochastic(rng, n)
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

// The parallel node contraction must agree with the serial path within
// 1e-12 for every worker count, including tensors that are entirely
// dangling or entirely empty.
func TestNodeApplyParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []*Tensor{
		randomTensor(rng, 60, 4, 700),
		randomTensor(rng, 17, 1, 90),
		randomTensor(rng, 40, 6, 10),
		func() *Tensor { a := New(12, 3); a.Finalize(); return a }(), // all dangling
		func() *Tensor { a := New(0, 0); a.Finalize(); return a }(),  // empty
	}
	for ci, a := range cases {
		o := NewNodeTransition(a)
		x := randomVec(rng, o.N())
		z := randomVec(rng, o.M())
		want := make([]float64, o.N())
		o.Apply(x, z, want)
		for _, workers := range []int{2, 3, 8} {
			p := par.New(workers)
			s := NewNodeApplyScratch(o, workers)
			got := make([]float64, o.N())
			o.ApplyParallel(p, s, x, z, got)
			if d := maxAbsDiff(want, got); d > 1e-12 {
				t.Errorf("case %d workers %d: parallel Apply diverged by %v", ci, workers, d)
			}
			p.Close()
		}
	}
}

// Same agreement for the relation contraction, with distinct mode-1 and
// mode-2 vectors (the ApplyPair form used by HAR).
func TestRelationApplyPairParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	cases := []*Tensor{
		randomTensor(rng, 50, 5, 600),
		randomTensor(rng, 21, 2, 180),
		func() *Tensor { a := New(9, 4); a.Finalize(); return a }(), // all dangling
		func() *Tensor { a := New(0, 0); a.Finalize(); return a }(), // empty
	}
	for ci, a := range cases {
		r := NewRelationTransition(a)
		xi := randomVec(rng, r.N())
		xj := randomVec(rng, r.N())
		want := make([]float64, r.M())
		r.ApplyPair(xi, xj, want)
		wantSame := make([]float64, r.M())
		r.Apply(xi, wantSame)
		for _, workers := range []int{2, 4, 7} {
			p := par.New(workers)
			s := NewRelationApplyScratch(r, workers)
			got := make([]float64, r.M())
			r.ApplyPairParallel(p, s, xi, xj, got)
			if d := maxAbsDiff(want, got); d > 1e-12 {
				t.Errorf("case %d workers %d: parallel ApplyPair diverged by %v", ci, workers, d)
			}
			gotSame := make([]float64, r.M())
			r.ApplyParallel(p, s, xi, gotSame)
			if d := maxAbsDiff(wantSame, gotSame); d > 1e-12 {
				t.Errorf("case %d workers %d: parallel Apply diverged by %v", ci, workers, d)
			}
			p.Close()
		}
	}
}

// For a fixed shard count, repeated parallel contractions must agree with
// each other bit for bit: shard boundaries and the reduction order depend
// only on the shard count, never on goroutine scheduling.
func TestParallelApplyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomTensor(rng, 80, 5, 1200)
	o := NewNodeTransition(a)
	r := NewRelationTransition(a)
	x := randomVec(rng, o.N())
	z := randomVec(rng, o.M())
	p := par.New(4)
	defer p.Close()
	so := NewNodeApplyScratch(o, 4)
	sr := NewRelationApplyScratch(r, 4)
	first := make([]float64, o.N())
	firstZ := make([]float64, r.M())
	o.ApplyParallel(p, so, x, z, first)
	r.ApplyParallel(p, sr, x, firstZ)
	for trial := 0; trial < 20; trial++ {
		got := make([]float64, o.N())
		gotZ := make([]float64, r.M())
		o.ApplyParallel(p, so, x, z, got)
		r.ApplyParallel(p, sr, x, gotZ)
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("trial %d: node contraction not deterministic at %d", trial, i)
			}
		}
		for k := range firstZ {
			if gotZ[k] != firstZ[k] {
				t.Fatalf("trial %d: relation contraction not deterministic at %d", trial, k)
			}
		}
	}
}

// Steady-state parallel contractions must not allocate: the task, the
// wait group, and all partial buffers live in the reusable scratch.
func TestParallelApplyZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomTensor(rng, 100, 4, 2000)
	o := NewNodeTransition(a)
	r := NewRelationTransition(a)
	x := randomVec(rng, o.N())
	z := randomVec(rng, o.M())
	dst := make([]float64, o.N())
	dstZ := make([]float64, r.M())
	p := par.New(4)
	defer p.Close()
	so := NewNodeApplyScratch(o, 4)
	sr := NewRelationApplyScratch(r, 4)
	if allocs := testing.AllocsPerRun(50, func() {
		o.ApplyParallel(p, so, x, z, dst)
	}); allocs != 0 {
		t.Errorf("NodeTransition.ApplyParallel allocates %v per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		r.ApplyParallel(p, sr, x, dstZ)
	}); allocs != 0 {
		t.Errorf("RelationTransition.ApplyParallel allocates %v per call, want 0", allocs)
	}
}

// A nil pool or a single-shard scratch must take the serial path and give
// identical results.
func TestParallelApplySerialFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomTensor(rng, 30, 3, 270)
	o := NewNodeTransition(a)
	x := randomVec(rng, o.N())
	z := randomVec(rng, o.M())
	want := make([]float64, o.N())
	o.Apply(x, z, want)
	got := make([]float64, o.N())
	o.ApplyParallel(nil, nil, x, z, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nil-pool fallback differs at %d", i)
		}
	}
	p := par.New(1)
	defer p.Close()
	s := NewNodeApplyScratch(o, 1)
	o.ApplyParallel(p, s, x, z, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("single-worker fallback differs at %d", i)
		}
	}
}
