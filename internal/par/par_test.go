package par

import (
	"sync"
	"sync/atomic"
	"testing"

	"tmark/internal/obs"
)

// coverTask marks every index of its shard range; used to prove exact
// coverage of [0, n).
type coverTask struct {
	n    int
	hits []int32
}

func (t *coverTask) RunShard(s, shards int) {
	lo, hi := Split(t.n, shards, s)
	for i := lo; i < hi; i++ {
		atomic.AddInt32(&t.hits[i], 1)
	}
}

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(workers)
		for _, n := range []int{0, 1, 5, 97, 1000} {
			task := &coverTask{n: n, hits: make([]int32, n)}
			var wg sync.WaitGroup
			shards := workers
			p.Run(shards, task, &wg)
			for i, h := range task.hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
		p.Close()
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	p := New(4)
	defer p.Close()
	for _, n := range []int{0, 1, 2, 3, 17, 257} {
		hits := make([]int32, n)
		p.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, h)
			}
		}
	}
}

func TestSplitTilesRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		for _, shards := range []int{1, 2, 3, 7, 16} {
			prev := 0
			for s := 0; s < shards; s++ {
				lo, hi := Split(n, shards, s)
				if lo != prev {
					t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d", n, shards, s, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d shards=%d: shard %d inverted range", n, shards, s)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d shards=%d: ranges end at %d", n, shards, prev)
			}
		}
	}
}

// concurrencyTask records the peak number of simultaneously running shards.
type concurrencyTask struct {
	gate    chan struct{}
	running int32
	peak    int32
}

func (t *concurrencyTask) RunShard(s, shards int) {
	cur := atomic.AddInt32(&t.running, 1)
	for {
		old := atomic.LoadInt32(&t.peak)
		if cur <= old || atomic.CompareAndSwapInt32(&t.peak, old, cur) {
			break
		}
	}
	<-t.gate
	atomic.AddInt32(&t.running, -1)
}

// The pool must bound actual concurrency to the worker count even when far
// more shards are dispatched — this is the property the old semaphore
// pattern in the solver violated.
func TestRunBoundsConcurrency(t *testing.T) {
	const workers, shards = 3, 12
	p := New(workers)
	defer p.Close()
	task := &concurrencyTask{gate: make(chan struct{})}
	done := make(chan struct{})
	var wg sync.WaitGroup
	go func() {
		p.Run(shards, task, &wg)
		close(done)
	}()
	for i := 0; i < shards; i++ {
		task.gate <- struct{}{}
	}
	<-done
	if task.peak > workers {
		t.Fatalf("peak concurrency %d exceeds workers %d", task.peak, workers)
	}
}

func TestNilAndSerialPool(t *testing.T) {
	var p *Pool
	if !p.Serial() || p.Workers() != 1 {
		t.Fatalf("nil pool should be serial with 1 worker")
	}
	ran := 0
	p.For(5, func(lo, hi int) { ran += hi - lo })
	if ran != 5 {
		t.Fatalf("nil pool For covered %d of 5", ran)
	}
	p.Close() // must not panic

	s := New(1)
	defer s.Close()
	if !s.Serial() {
		t.Fatalf("1-worker pool should be serial")
	}
	task := &coverTask{n: 10, hits: make([]int32, 10)}
	var wg sync.WaitGroup
	s.Run(4, task, &wg)
	for i, h := range task.hits {
		if h != 1 {
			t.Fatalf("serial pool: index %d hit %d times", i, h)
		}
	}
}

// sumTask accumulates a per-shard sum; reused across calls to prove the
// dispatch path itself does not allocate.
type sumTask struct {
	xs   []float64
	part []float64
}

func (t *sumTask) RunShard(s, shards int) {
	lo, hi := Split(len(t.xs), shards, s)
	var sum float64
	for _, v := range t.xs[lo:hi] {
		sum += v
	}
	t.part[s] = sum
}

func TestRunDispatchDoesNotAllocate(t *testing.T) {
	p := New(4)
	defer p.Close()
	task := &sumTask{xs: make([]float64, 4096), part: make([]float64, 4)}
	for i := range task.xs {
		task.xs[i] = 1
	}
	var wg sync.WaitGroup
	allocs := testing.AllocsPerRun(100, func() {
		p.Run(4, task, &wg)
	})
	if allocs != 0 {
		t.Fatalf("Run allocated %v times per call, want 0", allocs)
	}
}

func TestConcurrentRunCalls(t *testing.T) {
	p := New(4)
	defer p.Close()
	var outer sync.WaitGroup
	for g := 0; g < 6; g++ {
		outer.Add(1)
		go func() {
			defer outer.Done()
			task := &sumTask{xs: make([]float64, 1000), part: make([]float64, 4)}
			for i := range task.xs {
				task.xs[i] = 0.5
			}
			var wg sync.WaitGroup
			for iter := 0; iter < 50; iter++ {
				p.Run(4, task, &wg)
				var total float64
				for _, v := range task.part {
					total += v
				}
				if total != 500 {
					t.Errorf("concurrent Run sum = %v, want 500", total)
					return
				}
			}
		}()
	}
	outer.Wait()
}

func TestNewObservedRecordsPoolStats(t *testing.T) {
	st := obs.NewPoolStats(4)
	p := NewObserved(4, st)
	defer p.Close()

	task := &sumTask{xs: make([]float64, 1000), part: make([]float64, 4)}
	for i := range task.xs {
		task.xs[i] = 1
	}
	var wg sync.WaitGroup
	const runs = 10
	for i := 0; i < runs; i++ {
		p.Run(4, task, &wg)
	}
	if st.Dispatches() != runs {
		t.Errorf("dispatches = %d, want %d", st.Dispatches(), runs)
	}
	if st.ShardsRun() != 4*runs {
		t.Errorf("shards = %d, want %d", st.ShardsRun(), 4*runs)
	}
	if st.Busy() <= 0 {
		t.Errorf("busy = %v, want > 0", st.Busy())
	}
}

func TestNewObservedSerialPool(t *testing.T) {
	st := obs.NewPoolStats(1)
	p := NewObserved(1, st)
	defer p.Close()
	task := &sumTask{xs: make([]float64, 100), part: make([]float64, 2)}
	var wg sync.WaitGroup
	p.Run(2, task, &wg)
	if st.Dispatches() != 1 || st.ShardsRun() != 1 {
		// The serial path runs every shard inline and records the batch as
		// one shard execution on worker 0.
		t.Errorf("serial stats = %d dispatches, %d shards", st.Dispatches(), st.ShardsRun())
	}
}

func TestObservedRunStaysAllocationFree(t *testing.T) {
	st := obs.NewPoolStats(4)
	p := NewObserved(4, st)
	defer p.Close()
	task := &sumTask{xs: make([]float64, 1000), part: make([]float64, 4)}
	var wg sync.WaitGroup
	allocs := testing.AllocsPerRun(100, func() {
		p.Run(4, task, &wg)
	})
	if allocs != 0 {
		t.Fatalf("observed Run allocated %v times per call, want 0", allocs)
	}
}
