// Package par provides the worker pool and sharded parallel-for used by
// the solver's hot loops. The design goals, in order: (1) bound the actual
// compute concurrency to an explicit worker count, (2) make steady-state
// dispatch allocation-free so per-iteration kernels stay zero-alloc, and
// (3) keep results deterministic — shard boundaries depend only on the
// input size and shard count, never on scheduling.
//
// A kernel implements Task, keeps the task struct (and a WaitGroup) inside
// a reusable scratch object, and calls Pool.Run. Jobs travel by value
// through a channel and the Task interface holds a pointer, so nothing
// escapes to the heap per call.
package par

import (
	"runtime"
	"sync"
	"time"

	"tmark/internal/obs"
)

// Task is a unit of sharded work: RunShard is invoked once per shard with
// the shard index and the total shard count. Implementations partition
// their input with Split. A RunShard body must not call back into the pool
// — the workers that would serve the nested call may all be occupied by
// the outer one.
type Task interface {
	RunShard(shard, shards int)
}

// job pairs one task shard with its completion group.
type job struct {
	t      Task
	shard  int
	shards int
	wg     *sync.WaitGroup
}

// Pool is a fixed set of worker goroutines executing Task shards. A nil
// Pool, or one built with a single worker, runs everything inline on the
// caller. Pools are safe for concurrent Run/For calls; Close releases the
// workers.
type Pool struct {
	workers int
	jobs    chan job
	// stats observes dispatches, shard executions and per-worker busy
	// time. It is fixed at construction (workers read it without
	// synchronisation) and nil means observation off: the hot dispatch
	// path then pays one branch per shard and nothing else.
	stats *obs.PoolStats
}

// New returns a pool bounded to the given number of concurrent executors;
// workers <= 0 means GOMAXPROCS. The pool spawns workers-1 goroutines
// because the caller of Run/For executes the final shard itself, so
// exactly `workers` goroutines compute during a dispatch.
func New(workers int) *Pool { return NewObserved(workers, nil) }

// NewObserved is New with pool telemetry: every dispatch, shard execution
// and per-worker busy interval is recorded into stats (sharded per worker,
// so observation does not serialise the workers). A nil stats disables
// observation and is exactly New.
func NewObserved(workers int, stats *obs.PoolStats) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, stats: stats}
	if workers > 1 {
		p.jobs = make(chan job, 4*workers)
		for w := 0; w < workers-1; w++ {
			go p.work(w)
		}
	}
	return p
}

func (p *Pool) work(id int) {
	for jb := range p.jobs {
		if p.stats != nil {
			start := time.Now()
			jb.t.RunShard(jb.shard, jb.shards)
			p.stats.ObserveShard(id, time.Since(start))
		} else {
			jb.t.RunShard(jb.shard, jb.shards)
		}
		jb.wg.Done()
	}
}

// Workers returns the concurrency bound the pool was built with; a nil
// pool reports 1.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Serial reports whether the pool executes everything inline on the
// caller (nil pool or a single worker).
func (p *Pool) Serial() bool { return p == nil || p.jobs == nil }

// Run executes t.RunShard(s, shards) for every s in [0, shards): shards-1
// jobs are dispatched to the workers, the caller runs the last shard, then
// blocks until all complete. wg must be an otherwise-idle WaitGroup owned
// by the caller; keeping it in a reusable scratch struct next to the task
// makes Run allocation-free. Tasks must not call Run themselves.
func (p *Pool) Run(shards int, t Task, wg *sync.WaitGroup) {
	if p.Serial() || shards <= 1 {
		if p != nil && p.stats != nil && shards > 0 {
			p.stats.Dispatch()
			start := time.Now()
			for s := 0; s < shards; s++ {
				t.RunShard(s, shards)
			}
			p.stats.ObserveShard(0, time.Since(start))
			return
		}
		for s := 0; s < shards; s++ {
			t.RunShard(s, shards)
		}
		return
	}
	p.stats.Dispatch()
	wg.Add(shards - 1)
	for s := 0; s < shards-1; s++ {
		p.jobs <- job{t, s, shards, wg}
	}
	if p.stats != nil {
		// The caller acts as the last worker; its busy time lands in the
		// final per-worker slot.
		start := time.Now()
		t.RunShard(shards-1, shards)
		p.stats.ObserveShard(p.workers-1, time.Since(start))
	} else {
		t.RunShard(shards-1, shards)
	}
	wg.Wait()
}

// funcTask adapts a contiguous-range closure to Task for For.
type funcTask struct {
	n  int
	fn func(lo, hi int)
}

func (t *funcTask) RunShard(s, shards int) {
	lo, hi := Split(t.n, shards, s)
	if lo < hi {
		t.fn(lo, hi)
	}
}

// For runs fn over disjoint contiguous sub-ranges of [0, n) covering it
// exactly, and waits. It allocates a small adapter per call, so it belongs
// on construction and driver paths, not inside zero-allocation kernels.
func (p *Pool) For(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.Serial() || n == 1 {
		fn(0, n)
		return
	}
	shards := p.workers
	if shards > n {
		shards = n
	}
	var wg sync.WaitGroup
	t := funcTask{n: n, fn: fn}
	p.Run(shards, &t, &wg)
}

// Close releases the pool's worker goroutines. The pool must be idle, and
// no Run or For may be issued afterwards. Close on a nil or serial pool is
// a no-op.
func (p *Pool) Close() {
	if p != nil && p.jobs != nil {
		close(p.jobs)
	}
}

// Split partitions n items into near-equal contiguous ranges and returns
// the half-open range of shard s. Boundaries depend only on (n, shards),
// which pins the reduction order — and therefore the exact floating-point
// result — of every sharded kernel for a given worker count.
func Split(n, shards, s int) (lo, hi int) {
	if shards <= 0 {
		return 0, n
	}
	return s * n / shards, (s + 1) * n / shards
}
