package rank

import (
	"math/rand"
	"strings"
	"testing"

	"tmark/internal/hin"
	"tmark/internal/vec"
)

// starGraph builds a hub-and-spoke network: node 0 links to everyone via
// relation 0 and a couple of noise links via relation 1.
func starGraph() *hin.Graph {
	g := hin.New("c")
	for i := 0; i < 6; i++ {
		g.AddNode("", nil)
	}
	spokes := g.AddRelation("spokes", true)
	noise := g.AddRelation("noise", true)
	for i := 1; i < 6; i++ {
		g.AddEdge(spokes, 0, i) // 0 → i
		g.AddEdge(spokes, i, 0) // i → 0, keeping the network irreducible
	}
	g.AddEdge(noise, 1, 2)
	return g
}

func TestMultiRankConvergesAndRanksHub(t *testing.T) {
	g := starGraph()
	res, err := MultiRank(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("MultiRank did not converge: %+v", res)
	}
	if !vec.IsStochastic(res.X, 1e-8) || !vec.IsStochastic(res.Z, 1e-8) {
		t.Fatalf("MultiRank scores must be distributions")
	}
	if top := res.TopNodes(1); top[0] != 0 {
		t.Errorf("hub node should rank first, got %v (x=%v)", top, res.X)
	}
	if top := res.TopRelations(1); top[0] != 0 {
		t.Errorf("spokes relation should rank first, got %v (z=%v)", top, res.Z)
	}
	if !strings.Contains(res.String(), "converged=true") {
		t.Errorf("String = %q", res.String())
	}
}

func TestMultiRankEmptyGraph(t *testing.T) {
	if _, err := MultiRank(hin.New(), Options{}); err == nil {
		t.Errorf("empty graph should error")
	}
	g := hin.New("c")
	g.AddNode("", nil)
	if _, err := MultiRank(g, Options{}); err == nil {
		t.Errorf("graph without relations should error")
	}
}

func TestMultiRankRestartHandlesReducible(t *testing.T) {
	// A one-way chain is reducible; with restart the iteration still
	// converges to a positive distribution.
	g := hin.New("c")
	for i := 0; i < 4; i++ {
		g.AddNode("", nil)
	}
	r := g.AddRelation("chain", true)
	for i := 0; i < 3; i++ {
		g.AddEdge(r, i, i+1)
	}
	res, err := MultiRank(g, Options{Restart: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("restarted MultiRank should converge on reducible input")
	}
	for i, v := range res.X {
		if v <= 0 {
			t.Errorf("x[%d] = %v, want positive with restart", i, v)
		}
	}
}

func TestHARSeparatesHubsFromAuthorities(t *testing.T) {
	// Node 0 points at 1..4 (pure hub); nodes 1..4 point at 5 (making 5 a
	// strong authority).
	g := hin.New("c")
	for i := 0; i < 6; i++ {
		g.AddNode("", nil)
	}
	r := g.AddRelation("links", true)
	for i := 1; i < 5; i++ {
		g.AddEdge(r, 0, i)
		g.AddEdge(r, i, 5)
	}
	res, err := HAR(g, Options{Restart: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("HAR did not converge: %+v", res)
	}
	for _, v := range [][]float64{res.Hub, res.Authority, res.Relevance} {
		if !vec.IsStochastic(v, 1e-8) {
			t.Fatalf("HAR outputs must be distributions")
		}
	}
	if top := res.TopHubs(1); top[0] != 0 {
		t.Errorf("node 0 should be the top hub, got %v (hub=%v)", top, res.Hub)
	}
	if top := res.TopAuthorities(1); top[0] != 5 {
		t.Errorf("node 5 should be the top authority, got %v (auth=%v)", top, res.Authority)
	}
	if top := res.TopRelations(1); top[0] != 0 {
		t.Errorf("only relation should top the relevance ranking")
	}
}

func TestHAREmptyGraph(t *testing.T) {
	if _, err := HAR(hin.New(), Options{}); err == nil {
		t.Errorf("empty graph should error")
	}
}

func TestTopIndicesClampsAndOrders(t *testing.T) {
	scores := vec.Vector{0.1, 0.5, 0.2, 0.2}
	top := topIndices(scores, 99)
	if len(top) != 4 {
		t.Fatalf("top length %d, want clamped 4", len(top))
	}
	if top[0] != 1 {
		t.Errorf("top[0] = %d, want 1", top[0])
	}
	for a := 1; a < len(top); a++ {
		if scores[top[a]] > scores[top[a-1]] {
			t.Errorf("topIndices not descending: %v", top)
		}
	}
}

func TestOptionsNormalized(t *testing.T) {
	o := Options{}.normalized()
	if o.Epsilon != 1e-10 || o.MaxIterations != 1000 || o.Restart != 0 {
		t.Errorf("defaults wrong: %+v", o)
	}
	bad := Options{Restart: 1.5}.normalized()
	if bad.Restart != 0 {
		t.Errorf("out-of-range restart should be disabled, got %v", bad.Restart)
	}
}

// MultiRank on random irreducible-ish networks stays in the simplex.
func TestMultiRankStochasticProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		g := hin.New("c")
		n := 3 + rng.Intn(10)
		for i := 0; i < n; i++ {
			g.AddNode("", nil)
		}
		m := 1 + rng.Intn(3)
		for k := 0; k < m; k++ {
			g.AddRelation(string(rune('a'+k)), true)
			for e := 0; e < 2*n; e++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u != v {
					g.AddEdge(k, u, v)
				}
			}
		}
		res, err := MultiRank(g, Options{Restart: 0.1, MaxIterations: 300})
		if err != nil {
			t.Fatal(err)
		}
		if !vec.IsStochastic(res.X, 1e-7) || !vec.IsStochastic(res.Z, 1e-7) {
			t.Fatalf("trial %d: MultiRank left the simplex", trial)
		}
	}
}
