// Package rank implements the unsupervised tensor co-ranking ancestors of
// T-Mark that the paper builds on: MultiRank (Ng, Li, Ye; KDD 2011), which
// co-ranks objects and relations of a multi-relational network as the
// stationary distributions of exactly the tensor equations (7)–(8), and
// HAR (Li, Ng, Ye; SDM 2012), which produces hub, authority and relevance
// scores from a pair of transition tensors.
//
// T-Mark is the semi-supervised descendant of these methods: it adds the
// labelled-seed restart and the feature channel. Having the ancestors in
// the repository both documents the lineage and provides unsupervised
// rankings for networks without any labels.
package rank

import (
	"errors"
	"fmt"

	"tmark/internal/hin"
	"tmark/internal/tensor"
	"tmark/internal/vec"
)

// Options controls the fixed-point iterations of both algorithms.
type Options struct {
	// Epsilon is the L1 convergence threshold; 0 means 1e-10.
	Epsilon float64
	// MaxIterations bounds the iteration count; 0 means 1000.
	MaxIterations int
	// Restart damps the iteration toward the uniform distribution with
	// this probability, guaranteeing convergence on reducible networks
	// (the original papers assume irreducibility instead). 0 disables it.
	Restart float64
}

func (o Options) normalized() Options {
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-10
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 1000
	}
	if o.Restart < 0 || o.Restart >= 1 {
		o.Restart = 0
	}
	return o
}

// MultiRankResult holds the stationary co-ranking.
type MultiRankResult struct {
	// X ranks the nodes (stationary object distribution).
	X vec.Vector
	// Z ranks the relations (stationary relation distribution).
	Z          vec.Vector
	Iterations int
	Converged  bool
	Trace      []float64
}

// MultiRank co-ranks the nodes and relations of the network by solving
//
//	x = O ×̄₁ x ×̄₃ z,   z = R ×̄₁ x ×̄₂ x
//
// from uniform starting vectors. With Options.Restart > 0 the x-update is
// damped toward uniform, which makes the iteration a contraction even on
// reducible networks.
func MultiRank(g *hin.Graph, opt Options) (*MultiRankResult, error) {
	if g.N() == 0 || g.M() == 0 {
		return nil, errors.New("rank: MultiRank needs nodes and relations")
	}
	opt = opt.normalized()
	a := g.AdjacencyTensor()
	return multiRankTensor(a, opt)
}

func multiRankTensor(a *tensor.Tensor, opt Options) (*MultiRankResult, error) {
	o := tensor.NewNodeTransition(a)
	r := tensor.NewRelationTransition(a)
	n, m := a.N(), a.M()
	x := vec.Uniform(n)
	z := vec.Uniform(m)
	xNext := vec.New(n)
	zNext := vec.New(m)
	uniform := vec.Uniform(n)

	res := &MultiRankResult{}
	for t := 1; t <= opt.MaxIterations; t++ {
		o.Apply(x, z, xNext)
		if opt.Restart > 0 {
			vec.Scale(1-opt.Restart, xNext)
			vec.Axpy(opt.Restart, uniform, xNext)
		}
		vec.Normalize1(xNext)
		r.Apply(xNext, zNext)
		vec.Normalize1(zNext)
		rho := vec.Diff1(x, xNext) + vec.Diff1(z, zNext)
		res.Trace = append(res.Trace, rho)
		res.Iterations = t
		copy(x, xNext)
		copy(z, zNext)
		if rho < opt.Epsilon {
			res.Converged = true
			break
		}
	}
	res.X, res.Z = x, z
	return res, nil
}

// TopNodes returns the node indices with the highest MultiRank scores,
// best first; k is clamped to the node count.
func (r *MultiRankResult) TopNodes(k int) []int {
	return topIndices(r.X, k)
}

// TopRelations returns the relation indices with the highest scores.
func (r *MultiRankResult) TopRelations(k int) []int {
	return topIndices(r.Z, k)
}

func topIndices(scores vec.Vector, k int) []int {
	if k > len(scores) {
		k = len(scores)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	// Selection by repeated max keeps the code dependency-free and the
	// score vectors here are short.
	for a := 0; a < k; a++ {
		best := a
		for b := a + 1; b < len(idx); b++ {
			if scores[idx[b]] > scores[idx[best]] {
				best = b
			}
		}
		idx[a], idx[best] = idx[best], idx[a]
	}
	return idx[:k]
}

// String summarises the result.
func (r *MultiRankResult) String() string {
	return fmt.Sprintf("multirank: converged=%v iterations=%d", r.Converged, r.Iterations)
}
