package rank

import (
	"errors"

	"tmark/internal/hin"
	"tmark/internal/tensor"
	"tmark/internal/vec"
)

// HARResult holds the hub, authority and relevance stationary scores.
type HARResult struct {
	// Hub scores nodes by how well they point at authorities.
	Hub vec.Vector
	// Authority scores nodes by how well hubs point at them.
	Authority vec.Vector
	// Relevance scores relations by how much hub→authority traffic they
	// carry.
	Relevance  vec.Vector
	Iterations int
	Converged  bool
	Trace      []float64
}

// HAR computes hub, authority and relevance scores (Li, Ng, Ye; SDM 2012)
// by iterating
//
//	authority v = O  ×̄₁ u ×̄₃ z   (O column-normalised over destinations)
//	hub       u = O' ×̄₁ v ×̄₃ z   (O' column-normalised over sources)
//	relevance z = R  ×̄₁ v ×̄₂ u
//
// where O' is the transition tensor of the transposed network. All three
// vectors are probability distributions; Options.Restart damps u and v
// toward uniform for reducible networks.
func HAR(g *hin.Graph, opt Options) (*HARResult, error) {
	if g.N() == 0 || g.M() == 0 {
		return nil, errors.New("rank: HAR needs nodes and relations")
	}
	opt = opt.normalized()
	a := g.AdjacencyTensor()
	// Transposed adjacency: swap the node modes so normalising "over i"
	// becomes normalising over sources.
	at := tensor.New(a.N(), a.M())
	a.Each(func(i, j, k int, v float64) { at.Add(j, i, k, v) })
	at.Finalize()

	o := tensor.NewNodeTransition(a)   // authority update
	ot := tensor.NewNodeTransition(at) // hub update
	r := tensor.NewRelationTransition(a)

	n, m := a.N(), a.M()
	hub := vec.Uniform(n)
	auth := vec.Uniform(n)
	rel := vec.Uniform(m)
	hubNext := vec.New(n)
	authNext := vec.New(n)
	relNext := vec.New(m)
	uniform := vec.Uniform(n)

	res := &HARResult{}
	for t := 1; t <= opt.MaxIterations; t++ {
		o.Apply(hub, rel, authNext)
		ot.Apply(auth, rel, hubNext)
		if opt.Restart > 0 {
			vec.Scale(1-opt.Restart, authNext)
			vec.Axpy(opt.Restart, uniform, authNext)
			vec.Scale(1-opt.Restart, hubNext)
			vec.Axpy(opt.Restart, uniform, hubNext)
		}
		vec.Normalize1(authNext)
		vec.Normalize1(hubNext)
		r.ApplyPair(authNext, hubNext, relNext)
		vec.Normalize1(relNext)

		rho := vec.Diff1(auth, authNext) + vec.Diff1(hub, hubNext) + vec.Diff1(rel, relNext)
		res.Trace = append(res.Trace, rho)
		res.Iterations = t
		copy(auth, authNext)
		copy(hub, hubNext)
		copy(rel, relNext)
		if rho < opt.Epsilon {
			res.Converged = true
			break
		}
	}
	res.Hub, res.Authority, res.Relevance = hub, auth, rel
	return res, nil
}

// TopHubs returns the k highest-scoring hub nodes, best first.
func (r *HARResult) TopHubs(k int) []int { return topIndices(r.Hub, k) }

// TopAuthorities returns the k highest-scoring authority nodes.
func (r *HARResult) TopAuthorities(k int) []int { return topIndices(r.Authority, k) }

// TopRelations returns the k most relevant relations.
func (r *HARResult) TopRelations(k int) []int { return topIndices(r.Relevance, k) }
