// Package nn is a small from-scratch neural-network substrate: dense and
// highway layers, softmax cross-entropy training with Adam, all on plain
// float64 slices. It exists so the paper's deep baselines (Highway Network,
// Graph Inception) can be reproduced without any ML framework.
package nn

import "math"

// Activation selects a layer's nonlinearity.
type Activation int

// Supported activations.
const (
	Linear Activation = iota
	ReLU
	Sigmoid
	Tanh
)

// String names the activation for diagnostics.
func (a Activation) String() string {
	switch a {
	case Linear:
		return "linear"
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	default:
		return "unknown"
	}
}

// apply evaluates the activation elementwise, writing into dst.
func (a Activation) apply(pre, dst []float64) {
	switch a {
	case Linear:
		copy(dst, pre)
	case ReLU:
		for i, v := range pre {
			if v > 0 {
				dst[i] = v
			} else {
				dst[i] = 0
			}
		}
	case Sigmoid:
		for i, v := range pre {
			dst[i] = 1 / (1 + math.Exp(-v))
		}
	case Tanh:
		for i, v := range pre {
			dst[i] = math.Tanh(v)
		}
	}
}

// derivFromOutput returns dact/dpre given the activation *output* value;
// all supported activations admit this form, which avoids caching preacts.
func (a Activation) derivFromOutput(out float64) float64 {
	switch a {
	case Linear:
		return 1
	case ReLU:
		if out > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return out * (1 - out)
	case Tanh:
		return 1 - out*out
	default:
		return 1
	}
}
