package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestDropoutInferenceIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDropout(4, 0.5, rng)
	x := []float64{1, -2, 3, 0.5}
	y := d.Forward(x) // not training
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("inference dropout must be identity: %v vs %v", y, x)
		}
	}
	g := d.Backward([]float64{1, 1, 1, 1})
	for _, v := range g {
		if v != 1 {
			t.Fatalf("inference backward must pass gradients: %v", g)
		}
	}
}

func TestDropoutTrainingMasksAndScales(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDropout(1000, 0.5, rng)
	d.setTraining(true)
	x := make([]float64, 1000)
	for i := range x {
		x[i] = 1
	}
	y := d.Forward(x)
	zeros, survivors := 0, 0
	var sum float64
	for _, v := range y {
		if v == 0 {
			zeros++
		} else {
			survivors++
			if math.Abs(v-2) > 1e-12 {
				t.Fatalf("survivor scaled to %v, want 2 (1/(1-rate))", v)
			}
			sum += v
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Errorf("dropped %d of 1000 at rate 0.5", zeros)
	}
	// Expectation preserved: mean output ≈ mean input.
	if mean := sum / 1000; math.Abs(mean-1) > 0.15 {
		t.Errorf("inverted dropout mean = %v, want ≈ 1", mean)
	}
	// Backward respects the same mask.
	g := make([]float64, 1000)
	for i := range g {
		g[i] = 1
	}
	gin := d.Backward(g)
	for i, v := range gin {
		if (y[i] == 0) != (v == 0) {
			t.Fatalf("gradient mask inconsistent at %d", i)
		}
	}
}

func TestDropoutInNetworkGradients(t *testing.T) {
	// With rate 0 the dropout layer is transparent even in training, so
	// the numerical gradient check remains valid.
	rng := rand.New(rand.NewSource(3))
	net, err := NewNetwork(
		NewDense(3, 5, Tanh, rng),
		NewDropout(5, 0, rng),
		NewDense(5, 2, Linear, rng),
	)
	if err != nil {
		t.Fatal(err)
	}
	net.setTraining(true)
	numericalGradCheck(t, net, []float64{0.2, -0.4, 0.9}, 1)
}

func TestDropoutRegularisesTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var X [][]float64
	var y []int
	for i := 0; i < 60; i++ {
		c := i % 2
		cx := -1.0
		if c == 1 {
			cx = 1.0
		}
		X = append(X, []float64{cx + rng.NormFloat64()*0.3, rng.NormFloat64() * 0.3})
		y = append(y, c)
	}
	net, err := NewNetwork(
		NewDense(2, 16, ReLU, rng),
		NewDropout(16, 0.3, rng),
		NewDense(16, 2, Linear, rng),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Fit(X, y, DefaultTrainConfig(4)); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i, x := range X {
		if net.Predict(x) == y[i] {
			hits++
		}
	}
	if acc := float64(hits) / float64(len(X)); acc < 0.9 {
		t.Errorf("dropout net accuracy %.3f, want >= 0.9", acc)
	}
}

func TestDropoutPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for name, f := range map[string]func(){
		"bad dim":      func() { NewDropout(0, 0.1, rng) },
		"rate 1":       func() { NewDropout(3, 1, rng) },
		"rate <0":      func() { NewDropout(3, -0.1, rng) },
		"forward size": func() { NewDropout(3, 0.1, rng).Forward([]float64{1}) },
		"backward size": func() {
			d := NewDropout(3, 0.1, rng)
			d.Forward([]float64{1, 2, 3})
			d.Backward([]float64{1})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestEarlyStopping(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net, err := NewNetwork(NewDense(2, 4, Tanh, rng), NewDense(4, 2, Linear, rng))
	if err != nil {
		t.Fatal(err)
	}
	X := [][]float64{{0, 1}, {1, 0}}
	y := []int{0, 1}
	cfg := DefaultTrainConfig(6)
	cfg.Epochs = 5000
	cfg.Patience = 5
	loss, err := net.Fit(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The separable pair converges quickly; with patience the run must
	// stop long before 5000 epochs. We cannot observe the epoch count
	// directly, so assert via the wall-clock proxy: the loss is tiny and
	// predictions are right, i.e. training succeeded and stopped.
	if loss > 0.05 {
		t.Errorf("loss %v after early-stopped training", loss)
	}
	if net.Predict(X[0]) != 0 || net.Predict(X[1]) != 1 {
		t.Errorf("early-stopped net misclassifies")
	}
}
