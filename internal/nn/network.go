package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Network is a feed-forward stack of layers ending in class logits.
type Network struct {
	layers []Layer
}

// NewNetwork stacks the given layers, validating dimension compatibility.
func NewNetwork(layers ...Layer) (*Network, error) {
	if len(layers) == 0 {
		return nil, errors.New("nn: network needs at least one layer")
	}
	for i := 1; i < len(layers); i++ {
		if layers[i-1].Out() != layers[i].In() {
			return nil, fmt.Errorf("nn: layer %d out %d != layer %d in %d",
				i-1, layers[i-1].Out(), i, layers[i].In())
		}
	}
	return &Network{layers: layers}, nil
}

// In returns the input dimension.
func (n *Network) In() int { return n.layers[0].In() }

// Out returns the output (logit) dimension.
func (n *Network) Out() int { return n.layers[len(n.layers)-1].Out() }

// Params collects every trainable tensor.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Forward runs the stack and returns the logits (owned by the last layer).
func (n *Network) Forward(x []float64) []float64 {
	h := x
	for _, l := range n.layers {
		h = l.Forward(h)
	}
	return h
}

// Backward propagates dLoss/dLogits through the stack, accumulating
// parameter gradients.
func (n *Network) Backward(grad []float64) {
	g := grad
	for i := len(n.layers) - 1; i >= 0; i-- {
		g = n.layers[i].Backward(g)
	}
}

// Probabilities runs Forward and applies a stable softmax.
func (n *Network) Probabilities(x []float64) []float64 {
	logits := n.Forward(x)
	p := make([]float64, len(logits))
	copy(p, logits)
	softmax(p)
	return p
}

// Predict returns the argmax class for x.
func (n *Network) Predict(x []float64) int {
	logits := n.Forward(x)
	best, arg := logits[0], 0
	for i := 1; i < len(logits); i++ {
		if logits[i] > best {
			best, arg = logits[i], i
		}
	}
	return arg
}

func softmax(v []float64) {
	maxV := v[0]
	for _, x := range v[1:] {
		if x > maxV {
			maxV = x
		}
	}
	var sum float64
	for i, x := range v {
		e := math.Exp(x - maxV)
		v[i] = e
		sum += e
	}
	for i := range v {
		v[i] /= sum
	}
}

// TrainConfig controls Fit.
type TrainConfig struct {
	Epochs       int
	LearningRate float64
	L2           float64
	Seed         int64
	// Patience enables early stopping: training ends when the mean epoch
	// loss has not improved (by at least 1e-6) for this many consecutive
	// epochs. 0 disables it.
	Patience int
}

// DefaultTrainConfig returns settings that converge on the repository's
// baseline workloads.
func DefaultTrainConfig(seed int64) TrainConfig {
	return TrainConfig{Epochs: 60, LearningRate: 1e-2, L2: 1e-4, Seed: seed}
}

// Fit trains the network with sample-wise Adam on the softmax
// cross-entropy loss. Labels must lie in [0, Out()). It returns the mean
// loss of the final epoch.
func (n *Network) Fit(X [][]float64, y []int, cfg TrainConfig) (float64, error) {
	if len(X) == 0 || len(X) != len(y) {
		return 0, fmt.Errorf("nn: bad training set: %d examples, %d labels", len(X), len(y))
	}
	q := n.Out()
	for i, c := range y {
		if c < 0 || c >= q {
			return 0, fmt.Errorf("nn: label %d of example %d out of range %d", c, i, q)
		}
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 60
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 1e-2
	}
	opt := newAdam(n.Params(), cfg.LearningRate, cfg.L2)
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(X))
	for i := range order {
		order[i] = i
	}
	n.setTraining(true)
	defer n.setTraining(false)
	grad := make([]float64, q)
	lastLoss := 0.0
	bestLoss := math.Inf(1)
	stall := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		var lossSum float64
		for _, idx := range order {
			logits := n.Forward(X[idx])
			copy(grad, logits)
			softmax(grad)
			lossSum += -math.Log(math.Max(grad[y[idx]], 1e-12))
			grad[y[idx]] -= 1 // d(CE)/d(logits) = softmax − onehot
			n.Backward(grad)
			opt.step()
		}
		lastLoss = lossSum / float64(len(X))
		if cfg.Patience > 0 {
			if lastLoss < bestLoss-1e-6 {
				bestLoss = lastLoss
				stall = 0
			} else if stall++; stall >= cfg.Patience {
				break
			}
		}
	}
	return lastLoss, nil
}

// setTraining flips every mode-aware layer (currently Dropout).
func (n *Network) setTraining(on bool) {
	for _, l := range n.layers {
		if t, ok := l.(trainable); ok {
			t.setTraining(on)
		}
	}
}

// adam is a plain Adam optimiser over the parameter list, with decoupled
// L2 (weight decay applied directly to the weights).
type adam struct {
	params []*Param
	m, v   [][]float64
	lr, l2 float64
	t      int
}

func newAdam(params []*Param, lr, l2 float64) *adam {
	a := &adam{params: params, lr: lr, l2: l2}
	for _, p := range params {
		a.m = append(a.m, make([]float64, len(p.W)))
		a.v = append(a.v, make([]float64, len(p.W)))
	}
	return a
}

const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

func (a *adam) step() {
	a.t++
	c1 := 1 - math.Pow(adamBeta1, float64(a.t))
	c2 := 1 - math.Pow(adamBeta2, float64(a.t))
	for pi, p := range a.params {
		m, v := a.m[pi], a.v[pi]
		for i, g := range p.G {
			m[i] = adamBeta1*m[i] + (1-adamBeta1)*g
			v[i] = adamBeta2*v[i] + (1-adamBeta2)*g*g
			mhat := m[i] / c1
			vhat := v[i] / c2
			p.W[i] -= a.lr * (mhat/(math.Sqrt(vhat)+adamEps) + a.l2*p.W[i])
			p.G[i] = 0
		}
	}
}
