package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	W []float64 // values
	G []float64 // gradient, same length
}

func newParam(n int) *Param { return &Param{W: make([]float64, n), G: make([]float64, n)} }

// Layer is one differentiable stage of a Network. Forward caches whatever
// Backward needs, so a Layer instance handles one example at a time (the
// trainer runs sample-wise SGD, which is plenty at the network sizes the
// baselines use).
type Layer interface {
	// Forward consumes an input of length In() and returns the activation
	// of length Out(). The returned slice is owned by the layer.
	Forward(x []float64) []float64
	// Backward consumes dLoss/dOut, accumulates parameter gradients, and
	// returns dLoss/dIn (owned by the layer).
	Backward(grad []float64) []float64
	// Params exposes the trainable tensors for the optimiser.
	Params() []*Param
	In() int
	Out() int
}

// Dense is a fully connected layer out = act(W·x + b).
type Dense struct {
	in, out int
	act     Activation
	w, b    *Param

	x, y, gin []float64
}

// NewDense builds a dense layer with Glorot-uniform initialisation drawn
// from rng.
func NewDense(in, out int, act Activation, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: dense shape %dx%d", in, out))
	}
	d := &Dense{in: in, out: out, act: act,
		w: newParam(in * out), b: newParam(out),
		x: make([]float64, in), y: make([]float64, out), gin: make([]float64, in),
	}
	limit := math.Sqrt(6 / float64(in+out))
	for i := range d.w.W {
		d.w.W[i] = (2*rng.Float64() - 1) * limit
	}
	return d
}

// In implements Layer.
func (d *Dense) In() int { return d.in }

// Out implements Layer.
func (d *Dense) Out() int { return d.out }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// Forward implements Layer.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.in {
		panic(fmt.Sprintf("nn: dense forward input %d, want %d", len(x), d.in))
	}
	copy(d.x, x)
	pre := make([]float64, d.out)
	for o := 0; o < d.out; o++ {
		row := d.w.W[o*d.in : (o+1)*d.in]
		s := d.b.W[o]
		for i, xi := range x {
			s += row[i] * xi
		}
		pre[o] = s
	}
	d.act.apply(pre, d.y)
	return d.y
}

// Backward implements Layer.
func (d *Dense) Backward(grad []float64) []float64 {
	if len(grad) != d.out {
		panic(fmt.Sprintf("nn: dense backward grad %d, want %d", len(grad), d.out))
	}
	for i := range d.gin {
		d.gin[i] = 0
	}
	for o := 0; o < d.out; o++ {
		g := grad[o] * d.act.derivFromOutput(d.y[o])
		d.b.G[o] += g
		row := d.w.W[o*d.in : (o+1)*d.in]
		grow := d.w.G[o*d.in : (o+1)*d.in]
		for i, xi := range d.x {
			grow[i] += g * xi
			d.gin[i] += g * row[i]
		}
	}
	return d.gin
}

// Highway is the gated layer of Srivastava et al. (2015):
//
//	y = t ⊙ h + (1 − t) ⊙ x,   t = σ(W_t·x + b_t),   h = tanh(W_h·x + b_h).
//
// Input and output dimensions are equal. The transform-gate bias is
// initialised negative (−1) as the paper recommends, so early training
// favours the carry path.
type Highway struct {
	dim      int
	wh, bh   *Param
	wt, bt   *Param
	x, h, tg []float64
	y, gin   []float64
}

// NewHighway builds a highway layer of the given width.
func NewHighway(dim int, rng *rand.Rand) *Highway {
	if dim <= 0 {
		panic(fmt.Sprintf("nn: highway dim %d", dim))
	}
	hw := &Highway{dim: dim,
		wh: newParam(dim * dim), bh: newParam(dim),
		wt: newParam(dim * dim), bt: newParam(dim),
		x: make([]float64, dim), h: make([]float64, dim), tg: make([]float64, dim),
		y: make([]float64, dim), gin: make([]float64, dim),
	}
	limit := math.Sqrt(6 / float64(2*dim))
	for i := range hw.wh.W {
		hw.wh.W[i] = (2*rng.Float64() - 1) * limit
		hw.wt.W[i] = (2*rng.Float64() - 1) * limit
	}
	for o := range hw.bt.W {
		hw.bt.W[o] = -1
	}
	return hw
}

// In implements Layer.
func (hw *Highway) In() int { return hw.dim }

// Out implements Layer.
func (hw *Highway) Out() int { return hw.dim }

// Params implements Layer.
func (hw *Highway) Params() []*Param { return []*Param{hw.wh, hw.bh, hw.wt, hw.bt} }

// Forward implements Layer.
func (hw *Highway) Forward(x []float64) []float64 {
	if len(x) != hw.dim {
		panic(fmt.Sprintf("nn: highway forward input %d, want %d", len(x), hw.dim))
	}
	copy(hw.x, x)
	for o := 0; o < hw.dim; o++ {
		hrow := hw.wh.W[o*hw.dim : (o+1)*hw.dim]
		trow := hw.wt.W[o*hw.dim : (o+1)*hw.dim]
		hs, ts := hw.bh.W[o], hw.bt.W[o]
		for i, xi := range x {
			hs += hrow[i] * xi
			ts += trow[i] * xi
		}
		hw.h[o] = math.Tanh(hs)
		hw.tg[o] = 1 / (1 + math.Exp(-ts))
		hw.y[o] = hw.tg[o]*hw.h[o] + (1-hw.tg[o])*x[o]
	}
	return hw.y
}

// Backward implements Layer.
func (hw *Highway) Backward(grad []float64) []float64 {
	if len(grad) != hw.dim {
		panic(fmt.Sprintf("nn: highway backward grad %d, want %d", len(grad), hw.dim))
	}
	for i := range hw.gin {
		hw.gin[i] = 0
	}
	for o := 0; o < hw.dim; o++ {
		g := grad[o]
		t, h, x := hw.tg[o], hw.h[o], hw.x[o]
		// dy/dh = t, dy/dt = h − x, dy/dx (direct carry) = 1 − t.
		gh := g * t * (1 - h*h)         // through tanh
		gt := g * (h - x) * t * (1 - t) // through sigmoid
		hw.gin[o] += g * (1 - t)
		hw.bh.G[o] += gh
		hw.bt.G[o] += gt
		hrow := hw.wh.W[o*hw.dim : (o+1)*hw.dim]
		trow := hw.wt.W[o*hw.dim : (o+1)*hw.dim]
		ghrow := hw.wh.G[o*hw.dim : (o+1)*hw.dim]
		gtrow := hw.wt.G[o*hw.dim : (o+1)*hw.dim]
		for i, xi := range hw.x {
			ghrow[i] += gh * xi
			gtrow[i] += gt * xi
			hw.gin[i] += gh*hrow[i] + gt*trow[i]
		}
	}
	return hw.gin
}
