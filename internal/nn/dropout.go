package nn

import (
	"fmt"
	"math/rand"
)

// trainable is implemented by layers that behave differently during
// training and inference; Network.Fit flips every such layer into training
// mode for the duration of the fit.
type trainable interface {
	setTraining(on bool)
}

// Dropout zeroes each input with probability Rate during training and
// scales the survivors by 1/(1−Rate) (inverted dropout), so inference is
// the identity. It is the regulariser the deep baselines use to keep their
// parameter counts honest on small label sets.
type Dropout struct {
	dim      int
	rate     float64
	rng      *rand.Rand
	training bool

	mask []bool
	y    []float64
	gin  []float64
}

// NewDropout builds a dropout layer; rate must lie in [0, 1).
func NewDropout(dim int, rate float64, rng *rand.Rand) *Dropout {
	if dim <= 0 {
		panic(fmt.Sprintf("nn: dropout dim %d", dim))
	}
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v out of [0,1)", rate))
	}
	return &Dropout{dim: dim, rate: rate, rng: rng,
		mask: make([]bool, dim), y: make([]float64, dim), gin: make([]float64, dim)}
}

// In implements Layer.
func (d *Dropout) In() int { return d.dim }

// Out implements Layer.
func (d *Dropout) Out() int { return d.dim }

// Params implements Layer (dropout has none).
func (d *Dropout) Params() []*Param { return nil }

func (d *Dropout) setTraining(on bool) { d.training = on }

// Forward implements Layer.
func (d *Dropout) Forward(x []float64) []float64 {
	if len(x) != d.dim {
		panic(fmt.Sprintf("nn: dropout forward input %d, want %d", len(x), d.dim))
	}
	if !d.training || d.rate == 0 {
		copy(d.y, x)
		for i := range d.mask {
			d.mask[i] = true
		}
		return d.y
	}
	scale := 1 / (1 - d.rate)
	for i, v := range x {
		if d.rng.Float64() < d.rate {
			d.mask[i] = false
			d.y[i] = 0
		} else {
			d.mask[i] = true
			d.y[i] = v * scale
		}
	}
	return d.y
}

// Backward implements Layer.
func (d *Dropout) Backward(grad []float64) []float64 {
	if len(grad) != d.dim {
		panic(fmt.Sprintf("nn: dropout backward grad %d, want %d", len(grad), d.dim))
	}
	scale := 1.0
	if d.training && d.rate > 0 {
		scale = 1 / (1 - d.rate)
	}
	for i, g := range grad {
		if d.mask[i] {
			d.gin[i] = g * scale
		} else {
			d.gin[i] = 0
		}
	}
	return d.gin
}
