package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestActivationString(t *testing.T) {
	names := map[Activation]string{Linear: "linear", ReLU: "relu", Sigmoid: "sigmoid", Tanh: "tanh", Activation(99): "unknown"}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
}

func TestNewNetworkValidatesShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewNetwork(); err == nil {
		t.Errorf("empty network should fail")
	}
	_, err := NewNetwork(NewDense(3, 4, ReLU, rng), NewDense(5, 2, Linear, rng))
	if err == nil {
		t.Errorf("mismatched layers should fail")
	}
	net, err := NewNetwork(NewDense(3, 4, ReLU, rng), NewDense(4, 2, Linear, rng))
	if err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
	if net.In() != 3 || net.Out() != 2 {
		t.Errorf("In/Out = %d/%d, want 3/2", net.In(), net.Out())
	}
	if len(net.Params()) != 4 {
		t.Errorf("params = %d, want 4 (two W, two b)", len(net.Params()))
	}
}

// numericalGradCheck compares analytic parameter gradients against central
// finite differences for the softmax cross-entropy loss on one example.
func numericalGradCheck(t *testing.T, net *Network, x []float64, label int) {
	t.Helper()
	loss := func() float64 {
		p := net.Probabilities(x)
		return -math.Log(math.Max(p[label], 1e-300))
	}
	// Analytic gradients.
	logits := net.Forward(x)
	grad := make([]float64, len(logits))
	copy(grad, logits)
	softmax(grad)
	grad[label] -= 1
	for _, p := range net.Params() {
		for i := range p.G {
			p.G[i] = 0
		}
	}
	net.Backward(grad)

	const h = 1e-5
	for pi, p := range net.Params() {
		for i := range p.W {
			orig := p.W[i]
			p.W[i] = orig + h
			up := loss()
			p.W[i] = orig - h
			down := loss()
			p.W[i] = orig
			numeric := (up - down) / (2 * h)
			analytic := p.G[i]
			scale := math.Max(1, math.Abs(numeric)+math.Abs(analytic))
			if math.Abs(numeric-analytic)/scale > 1e-4 {
				t.Fatalf("param %d[%d]: analytic %v vs numeric %v", pi, i, analytic, numeric)
			}
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, act := range []Activation{Linear, ReLU, Sigmoid, Tanh} {
		net, err := NewNetwork(NewDense(4, 5, act, rng), NewDense(5, 3, Linear, rng))
		if err != nil {
			t.Fatal(err)
		}
		x := []float64{0.3, -0.7, 1.2, 0.05}
		numericalGradCheck(t, net, x, 1)
	}
}

func TestHighwayGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, err := NewNetwork(
		NewDense(3, 6, Tanh, rng),
		NewHighway(6, rng),
		NewHighway(6, rng),
		NewDense(6, 2, Linear, rng),
	)
	if err != nil {
		t.Fatal(err)
	}
	numericalGradCheck(t, net, []float64{0.5, -0.2, 0.9}, 0)
}

func TestFitLearnsXor(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net, err := NewNetwork(
		NewDense(2, 8, Tanh, rng),
		NewDense(8, 2, Linear, rng),
	)
	if err != nil {
		t.Fatal(err)
	}
	X := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := []int{0, 1, 1, 0}
	cfg := DefaultTrainConfig(4)
	cfg.Epochs = 400
	cfg.LearningRate = 0.05
	loss, err := net.Fit(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.1 {
		t.Errorf("final XOR loss = %v, want < 0.1", loss)
	}
	for i, x := range X {
		if got := net.Predict(x); got != y[i] {
			t.Errorf("XOR(%v) = %d, want %d", x, got, y[i])
		}
	}
}

func TestFitHighwayLearnsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var X [][]float64
	var y []int
	for i := 0; i < 120; i++ {
		c := i % 2
		cx := -1.5
		if c == 1 {
			cx = 1.5
		}
		X = append(X, []float64{cx + rng.NormFloat64()*0.4, rng.NormFloat64() * 0.4})
		y = append(y, c)
	}
	net, err := NewNetwork(
		NewDense(2, 10, ReLU, rng),
		NewHighway(10, rng),
		NewDense(10, 2, Linear, rng),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Fit(X, y, DefaultTrainConfig(5)); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i, x := range X {
		if net.Predict(x) == y[i] {
			hits++
		}
	}
	if acc := float64(hits) / float64(len(X)); acc < 0.95 {
		t.Errorf("highway blob accuracy = %v, want >= 0.95", acc)
	}
}

func TestFitValidatesInput(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net, _ := NewNetwork(NewDense(2, 2, Linear, rng))
	if _, err := net.Fit(nil, nil, DefaultTrainConfig(0)); err == nil {
		t.Errorf("empty training set should fail")
	}
	if _, err := net.Fit([][]float64{{1, 2}}, []int{5}, DefaultTrainConfig(0)); err == nil {
		t.Errorf("out-of-range label should fail")
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net, _ := NewNetwork(NewDense(3, 4, ReLU, rng), NewDense(4, 3, Linear, rng))
	p := net.Probabilities([]float64{1, -1, 0.5})
	var sum float64
	for _, v := range p {
		if v < 0 {
			t.Fatalf("negative probability %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestDeterministicTraining(t *testing.T) {
	build := func() *Network {
		rng := rand.New(rand.NewSource(8))
		net, _ := NewNetwork(NewDense(2, 4, Tanh, rng), NewDense(4, 2, Linear, rng))
		return net
	}
	X := [][]float64{{0, 1}, {1, 0}}
	y := []int{0, 1}
	n1, n2 := build(), build()
	if _, err := n1.Fit(X, y, DefaultTrainConfig(9)); err != nil {
		t.Fatal(err)
	}
	if _, err := n2.Fit(X, y, DefaultTrainConfig(9)); err != nil {
		t.Fatal(err)
	}
	p1, p2 := n1.Probabilities(X[0]), n2.Probabilities(X[0])
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("training not deterministic: %v vs %v", p1, p2)
		}
	}
}

func TestLayerPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := NewDense(2, 3, ReLU, rng)
	h := NewHighway(2, rng)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("dense forward", func() { d.Forward([]float64{1}) })
	mustPanic("dense backward", func() { d.Backward([]float64{1}) })
	mustPanic("highway forward", func() { h.Forward([]float64{1, 2, 3}) })
	mustPanic("highway backward", func() { h.Backward([]float64{1}) })
	mustPanic("bad dense shape", func() { NewDense(0, 1, ReLU, rng) })
	mustPanic("bad highway dim", func() { NewHighway(0, rng) })
}
