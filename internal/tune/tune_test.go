package tune

import (
	"math/rand"
	"testing"

	"tmark/internal/dataset"
	"tmark/internal/tmark"
)

func tuningGraph(seed int64) *dataset.SynthConfig {
	return &dataset.SynthConfig{
		Seed:          seed,
		Classes:       []string{"a", "b", "c"},
		NodesPerClass: 40,
		Vocab:         30,
		TokensPerNode: 10,
		FeatureFocus:  0.55,
		Relations: []dataset.RelationSpec{
			{Name: "strong", Homophily: 0.85, Edges: 400},
			{Name: "noise", Homophily: 0, Edges: 200},
		},
		LabelFraction: 0.4,
	}
}

func TestTuneSelectsReasonableConfig(t *testing.T) {
	g, err := dataset.Synth(*tuningGraph(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Tune(g, tmark.DefaultConfig(), DefaultGrid(), 3, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 16 { // 4 alphas × 4 gammas
		t.Fatalf("points = %d, want 16", len(res.Points))
	}
	for p := 1; p < len(res.Points); p++ {
		if res.Points[p].Accuracy > res.Points[p-1].Accuracy {
			t.Fatalf("points not sorted best-first")
		}
	}
	if res.Best.Validate() != nil {
		t.Errorf("selected config invalid: %+v", res.Best)
	}
	if res.Points[0].Accuracy < 0.6 {
		t.Errorf("best CV accuracy %.3f suspiciously low", res.Points[0].Accuracy)
	}
	// On a network whose links are strong and features moderate, the tuner
	// should not pick the feature-only-ish extreme.
	if res.Best.Gamma > 0.8 {
		t.Errorf("tuner picked gamma %v on a link-dominated network", res.Best.Gamma)
	}
}

func TestTuneEmptyGridKeepsBase(t *testing.T) {
	g, err := dataset.Synth(*tuningGraph(2))
	if err != nil {
		t.Fatal(err)
	}
	base := tmark.DefaultConfig()
	res, err := Tune(g, base, Grid{}, 2, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("points = %d, want 1 (base only)", len(res.Points))
	}
	if res.Best.Alpha != base.Alpha || res.Best.Gamma != base.Gamma {
		t.Errorf("empty grid changed the base config")
	}
}

func TestTuneErrors(t *testing.T) {
	g, err := dataset.Synth(*tuningGraph(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Tune(g, tmark.DefaultConfig(), Grid{}, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Errorf("folds=1 should error")
	}
	bad := tmark.DefaultConfig()
	bad.Alpha = 0
	if _, err := Tune(g, bad, Grid{}, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Errorf("invalid base should error")
	}
	cfg := tuningGraph(4)
	cfg.LabelFraction = 0.03 // one label per class → three labelled nodes
	tiny, err := dataset.Synth(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Tune(tiny, tmark.DefaultConfig(), Grid{}, 5, rand.New(rand.NewSource(1))); err != nil {
		t.Errorf("folds should clamp to labelled count, got %v", err)
	}
}

func TestTuneDeterministic(t *testing.T) {
	g, err := dataset.Synth(*tuningGraph(5))
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		res, err := Tune(g, tmark.DefaultConfig(), Grid{Alphas: []float64{0.5, 0.9}}, 2, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Best.Alpha != b.Best.Alpha {
		t.Errorf("tuning not deterministic: %v vs %v", a.Best.Alpha, b.Best.Alpha)
	}
	for i := range a.Points {
		if a.Points[i].Accuracy != b.Points[i].Accuracy {
			t.Fatalf("point accuracies differ between runs")
		}
	}
}

// The fold masking must hide exactly the fold's labels and nothing else.
func TestMaskFold(t *testing.T) {
	g, err := dataset.Synth(*tuningGraph(6))
	if err != nil {
		t.Fatal(err)
	}
	var labelled []int
	for i := 0; i < g.N(); i++ {
		if g.Labeled(i) {
			labelled = append(labelled, i)
		}
	}
	masked, mask := maskFold(g, labelled, 0, 4)
	hidden, kept := 0, 0
	for _, i := range labelled {
		if mask[i] {
			hidden++
			if masked.Labeled(i) {
				t.Fatalf("hidden node %d kept its label", i)
			}
		} else {
			kept++
			if !masked.Labeled(i) {
				t.Fatalf("non-fold node %d lost its label", i)
			}
		}
	}
	if hidden == 0 || kept == 0 {
		t.Fatalf("degenerate fold: hidden=%d kept=%d", hidden, kept)
	}
	want := (len(labelled) + 3) / 4
	if hidden != want {
		t.Errorf("hidden = %d, want %d", hidden, want)
	}
}
