// Package tune selects T-Mark hyper-parameters by cross-validation over
// the labelled seeds — the production counterpart of the paper's manual
// parameter studies (Figs. 6–9). The labelled nodes are split into folds;
// each candidate configuration is scored by hiding one fold at a time and
// measuring how well the solver recovers it.
package tune

import (
	"fmt"
	"math/rand"
	"sort"

	"tmark/internal/eval"
	"tmark/internal/hin"
	"tmark/internal/tmark"
)

// Grid enumerates the candidate values per parameter. Empty slices keep
// the base configuration's value.
type Grid struct {
	Alphas  []float64
	Gammas  []float64
	Lambdas []float64
}

// DefaultGrid covers the region the paper sweeps.
func DefaultGrid() Grid {
	return Grid{
		Alphas: []float64{0.5, 0.7, 0.8, 0.9},
		Gammas: []float64{0.2, 0.4, 0.6, 0.8},
	}
}

// candidates expands the grid into configurations on top of base.
func (g Grid) candidates(base tmark.Config) []tmark.Config {
	alphas := g.Alphas
	if len(alphas) == 0 {
		alphas = []float64{base.Alpha}
	}
	gammas := g.Gammas
	if len(gammas) == 0 {
		gammas = []float64{base.Gamma}
	}
	lambdas := g.Lambdas
	if len(lambdas) == 0 {
		lambdas = []float64{base.Lambda}
	}
	var out []tmark.Config
	for _, a := range alphas {
		for _, gm := range gammas {
			for _, l := range lambdas {
				cfg := base
				cfg.Alpha, cfg.Gamma, cfg.Lambda = a, gm, l
				out = append(out, cfg)
			}
		}
	}
	return out
}

// Point is one evaluated configuration.
type Point struct {
	Config   tmark.Config
	Accuracy float64
}

// Result reports the selection.
type Result struct {
	Best   tmark.Config
	Points []Point // sorted best-first
	Folds  int
}

// Tune scores every grid candidate by k-fold cross-validation over the
// labelled nodes of g and returns the accuracy-maximising configuration.
// Ties break toward the earlier candidate (the grid's order). folds is
// clamped to the labelled-node count; it must be at least 2.
func Tune(g *hin.Graph, base tmark.Config, grid Grid, folds int, rng *rand.Rand) (*Result, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if folds < 2 {
		return nil, fmt.Errorf("tune: folds %d, need >= 2", folds)
	}
	var labelled []int
	for i := 0; i < g.N(); i++ {
		if g.Labeled(i) {
			labelled = append(labelled, i)
		}
	}
	if len(labelled) < folds {
		folds = len(labelled)
	}
	if folds < 2 {
		return nil, fmt.Errorf("tune: only %d labelled nodes", len(labelled))
	}
	order := append([]int(nil), labelled...)
	rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })

	truth := make([]int, g.N())
	for i := range truth {
		truth[i] = g.PrimaryLabel(i)
	}

	candidates := grid.candidates(base)
	res := &Result{Folds: folds}
	for _, cfg := range candidates {
		var accSum float64
		for fold := 0; fold < folds; fold++ {
			masked, mask := maskFold(g, order, fold, folds)
			model, err := tmark.New(masked, cfg)
			if err != nil {
				return nil, fmt.Errorf("tune: config α=%v γ=%v: %w", cfg.Alpha, cfg.Gamma, err)
			}
			pred := model.Run().Predict()
			accSum += eval.Accuracy(pred, truth, mask)
		}
		res.Points = append(res.Points, Point{Config: cfg, Accuracy: accSum / float64(folds)})
	}
	sort.SliceStable(res.Points, func(a, b int) bool {
		return res.Points[a].Accuracy > res.Points[b].Accuracy
	})
	res.Best = res.Points[0].Config
	return res, nil
}

// maskFold returns a copy of g with the fold's labels hidden, plus the
// evaluation mask selecting exactly the hidden nodes.
func maskFold(g *hin.Graph, order []int, fold, folds int) (*hin.Graph, []bool) {
	hidden := make(map[int]bool)
	for pos, node := range order {
		if pos%folds == fold {
			hidden[node] = true
		}
	}
	masked := hin.New(g.Classes...)
	mask := make([]bool, g.N())
	for i := range g.Nodes {
		node := g.Nodes[i]
		masked.AddNode(node.Name, node.Features)
		if hidden[i] {
			mask[i] = true
			continue
		}
		if len(node.Labels) > 0 {
			masked.SetLabels(i, node.Labels...)
		}
	}
	for k := range g.Relations {
		r := g.Relations[k]
		nk := masked.AddRelation(r.Name, r.Directed)
		for _, e := range r.Edges {
			masked.AddWeightedEdge(nk, e.From, e.To, e.Weight)
		}
	}
	return masked, mask
}
