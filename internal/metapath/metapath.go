// Package metapath provides meta-path machinery for heterogeneous
// information networks: composing typed relations into multi-hop paths,
// counting path instances between node pairs, and the PathSim similarity
// of Sun et al. (VLDB 2011). The Hcc baseline's meta-path features are
// built on it, and it is generally useful for HIN feature engineering.
package metapath

import (
	"fmt"
	"sort"
	"strings"

	"tmark/internal/hin"
)

// Path is a sequence of relation indices composed left to right: the path
// [k1, k2] reaches the nodes found by following a k1 link then a k2 link.
type Path struct {
	Relations []int
}

// NewPath builds a path from relation indices.
func NewPath(relations ...int) Path {
	return Path{Relations: append([]int(nil), relations...)}
}

// Len returns the number of hops.
func (p Path) Len() int { return len(p.Relations) }

// String renders the path with relation names from g, or indices when g is
// nil.
func (p Path) String() string {
	parts := make([]string, len(p.Relations))
	for i, k := range p.Relations {
		parts[i] = fmt.Sprintf("r%d", k)
	}
	return strings.Join(parts, "→")
}

// Name renders the path with the relation names of g.
func (p Path) Name(g *hin.Graph) string {
	parts := make([]string, len(p.Relations))
	for i, k := range p.Relations {
		parts[i] = g.Relations[k].Name
	}
	return strings.Join(parts, "→")
}

// validate panics on malformed paths; path construction errors are always
// programming errors.
func (p Path) validate(g *hin.Graph) {
	if len(p.Relations) == 0 {
		panic("metapath: empty path")
	}
	for _, k := range p.Relations {
		if k < 0 || k >= g.M() {
			panic(fmt.Sprintf("metapath: relation %d out of range %d", k, g.M()))
		}
	}
}

// Counts holds sparse path-instance counts: Counts[i][j] is the number of
// path instances from node i to node j.
type Counts []map[int]float64

// Count returns the number of path instances between from and to.
func (c Counts) Count(from, to int) float64 {
	if from < 0 || from >= len(c) {
		return 0
	}
	return c[from][to]
}

// InstanceCounts walks the path from every node and counts the instances
// reaching each destination. Complexity is O(hops × instances); paths that
// explode combinatorially are the caller's responsibility to avoid (use
// Reach for support-only queries).
func InstanceCounts(g *hin.Graph, p Path) Counts {
	p.validate(g)
	lists := g.NeighborLists()
	n := g.N()
	counts := make(Counts, n)
	for i := 0; i < n; i++ {
		frontier := map[int]float64{i: 1}
		for _, k := range p.Relations {
			next := make(map[int]float64)
			for node, cnt := range frontier {
				for _, nb := range lists[k][node] {
					next[nb] += cnt
				}
			}
			frontier = next
			if len(frontier) == 0 {
				break
			}
		}
		counts[i] = frontier
	}
	return counts
}

// Reach returns, per node, the distinct nodes reachable along the path,
// excluding the trivial self destination. The lists are sorted.
func Reach(g *hin.Graph, p Path) [][]int {
	counts := InstanceCounts(g, p)
	out := make([][]int, len(counts))
	for i, dests := range counts {
		for j := range dests {
			if j != i {
				out[i] = append(out[i], j)
			}
		}
		sort.Ints(out[i])
	}
	return out
}

// PathSim computes the symmetric meta-path similarity of Sun et al.:
//
//	s(i, j) = 2·c(i→j) / (c(i→i) + c(j→j))
//
// computed over the round-trip path p∘reverse(p), where reverse uses the
// same relations backwards (meaningful for symmetric relations, which is
// the standard PathSim setting). Returns the n×n similarity as sparse rows.
func PathSim(g *hin.Graph, p Path) Counts {
	p.validate(g)
	// Round trip: forward then backward.
	round := make([]int, 0, 2*p.Len())
	round = append(round, p.Relations...)
	for i := p.Len() - 1; i >= 0; i-- {
		round = append(round, p.Relations[i])
	}
	counts := InstanceCounts(g, Path{Relations: round})
	n := g.N()
	sim := make(Counts, n)
	for i := 0; i < n; i++ {
		sim[i] = make(map[int]float64, len(counts[i]))
		for j, cij := range counts[i] {
			denom := counts[i][i] + counts[j][j]
			if denom > 0 {
				sim[i][j] = 2 * cij / denom
			}
		}
	}
	return sim
}

// Enumerate lists every path of length 1..maxLen over the graph's
// relations, in lexicographic order. The count is m + m² + … + m^maxLen;
// callers should keep maxLen small (the Hcc baseline uses 2).
func Enumerate(g *hin.Graph, maxLen int) []Path {
	if maxLen <= 0 {
		return nil
	}
	var out []Path
	var build func(prefix []int)
	build = func(prefix []int) {
		if len(prefix) > 0 {
			out = append(out, NewPath(prefix...))
		}
		if len(prefix) == maxLen {
			return
		}
		for k := 0; k < g.M(); k++ {
			build(append(prefix, k))
		}
	}
	build(nil)
	return out
}
