package metapath

import (
	"math"
	"testing"

	"tmark/internal/hin"
)

// chainGraph: 0 —a→ 1 —b→ 2, plus undirected c between 0 and 2.
func chainGraph() *hin.Graph {
	g := hin.New("x")
	for i := 0; i < 3; i++ {
		g.AddNode("", nil)
	}
	a := g.AddRelation("a", true)
	b := g.AddRelation("b", true)
	c := g.AddRelation("c", false)
	g.AddEdge(a, 0, 1)
	g.AddEdge(b, 1, 2)
	g.AddEdge(c, 0, 2)
	return g
}

func TestPathBasics(t *testing.T) {
	p := NewPath(0, 1)
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
	if p.String() != "r0→r1" {
		t.Errorf("String = %q", p.String())
	}
	g := chainGraph()
	if p.Name(g) != "a→b" {
		t.Errorf("Name = %q", p.Name(g))
	}
}

func TestInstanceCounts(t *testing.T) {
	g := chainGraph()
	// Path a→b: only 0→1→2.
	counts := InstanceCounts(g, NewPath(0, 1))
	if got := counts.Count(0, 2); got != 1 {
		t.Errorf("count(0→2 via a,b) = %v, want 1", got)
	}
	if got := counts.Count(1, 2); got != 0 {
		t.Errorf("count(1→2 via a,b) = %v, want 0 (no a-edge from 1)", got)
	}
	if got := counts.Count(9, 0); got != 0 {
		t.Errorf("out-of-range from should count 0")
	}
}

func TestInstanceCountsMultiplicity(t *testing.T) {
	// Two parallel 2-hop routes from 0 to 2 must count 2.
	g := hin.New("x")
	for i := 0; i < 4; i++ {
		g.AddNode("", nil)
	}
	r := g.AddRelation("r", true)
	g.AddEdge(r, 0, 1)
	g.AddEdge(r, 0, 3)
	g.AddEdge(r, 1, 2)
	g.AddEdge(r, 3, 2)
	counts := InstanceCounts(g, NewPath(0, 0))
	if got := counts.Count(0, 2); got != 2 {
		t.Errorf("count = %v, want 2 parallel instances", got)
	}
}

func TestReachExcludesSelf(t *testing.T) {
	g := chainGraph()
	// Undirected c composed with itself returns to self; Reach drops it.
	reach := Reach(g, NewPath(2, 2))
	for i, dests := range reach {
		for _, j := range dests {
			if j == i {
				t.Errorf("Reach kept self destination for node %d", i)
			}
		}
	}
	// Path c from node 0 reaches node 2.
	one := Reach(g, NewPath(2))
	if len(one[0]) != 1 || one[0][0] != 2 {
		t.Errorf("Reach(c)[0] = %v, want [2]", one[0])
	}
}

func TestPathSimProperties(t *testing.T) {
	// Star via shared attribute: 0 and 1 both connect to hub 2.
	g := hin.New("x")
	for i := 0; i < 3; i++ {
		g.AddNode("", nil)
	}
	r := g.AddRelation("shares", false)
	g.AddEdge(r, 0, 2)
	g.AddEdge(r, 1, 2)
	sim := PathSim(g, NewPath(0))
	// Self-similarity is 1 by construction.
	if got := sim.Count(0, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("PathSim(0,0) = %v, want 1", got)
	}
	// Symmetry.
	if math.Abs(sim.Count(0, 1)-sim.Count(1, 0)) > 1e-12 {
		t.Errorf("PathSim not symmetric: %v vs %v", sim.Count(0, 1), sim.Count(1, 0))
	}
	// 0 and 1 share their single attribute → similarity 1.
	if got := sim.Count(0, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("PathSim(0,1) = %v, want 1 (identical neighbourhoods)", got)
	}
	// Bounded by 1.
	for i := range sim {
		for j, v := range sim[i] {
			if v > 1+1e-12 {
				t.Errorf("PathSim(%d,%d) = %v exceeds 1", i, j, v)
			}
		}
	}
}

func TestEnumerate(t *testing.T) {
	g := chainGraph() // m = 3
	paths := Enumerate(g, 2)
	want := 3 + 9
	if len(paths) != want {
		t.Fatalf("Enumerate(2) = %d paths, want %d", len(paths), want)
	}
	if paths[0].Len() != 1 {
		t.Errorf("first enumerated path should be single-hop")
	}
	if Enumerate(g, 0) != nil {
		t.Errorf("maxLen 0 should enumerate nothing")
	}
}

func TestValidatePanics(t *testing.T) {
	g := chainGraph()
	for name, p := range map[string]Path{
		"empty":        {},
		"out of range": NewPath(7),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s path should panic", name)
				}
			}()
			InstanceCounts(g, p)
		}()
	}
}
