// Command experiments regenerates the paper's tables and figures on the
// synthetic datasets.
//
// Usage:
//
//	experiments [-run all|example|table2|table3|table4|table5|tables6-7|
//	             table8|tables9-10|table11|fig5|fig6|fig7|fig8|fig9|fig10|ablation]
//	            [-full] [-seed N] [-trials N] [-svg DIR]
//	            [-stats] [-metrics-addr :9090]
//
// By default it runs everything at the quick (CI) scale; -full switches to
// the paper's protocol (nine labelled fractions, ten trials, full dataset
// sizes) and takes correspondingly longer. With -svg the figure-shaped
// experiments additionally write SVG charts into DIR.
//
// Long experiment batches can be watched from outside: -metrics-addr
// serves the process metrics registry (solver run and iteration totals,
// per-kernel timers) at /metrics in Prometheus text format plus pprof
// under /debug/pprof/, and -stats dumps the registry snapshot to stderr
// after each experiment completes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tmark/internal/experiments"
	"tmark/pkg/obs"
)

// svger is any experiment result that can render itself as a chart.
type svger interface {
	SVG() (string, error)
}

func main() {
	var (
		run         = flag.String("run", "all", "experiment to run (comma separated), or 'all'")
		full        = flag.Bool("full", false, "use the paper's full protocol (10 trials, 9 fractions)")
		seed        = flag.Int64("seed", 1, "base random seed")
		trials      = flag.Int("trials", 0, "override the number of trials per cell")
		svgDir      = flag.String("svg", "", "directory to write SVG charts into")
		stats       = flag.Bool("stats", false, "dump the metrics registry snapshot to stderr after each experiment")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /vars and /debug/pprof on this address")
	)
	flag.Parse()

	if *metricsAddr != "" {
		addr, shutdown, err := obs.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: metrics server: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", addr)
		defer shutdown(context.Background())
	}

	opt := experiments.Quick(*seed)
	if *full {
		opt = experiments.Full(*seed)
	}
	if *trials > 0 {
		opt.Trials = *trials
	}
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: create %s: %v\n", *svgDir, err)
			os.Exit(1)
		}
	}

	selected := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		selected[strings.TrimSpace(name)] = true
	}
	want := func(name string) bool { return selected["all"] || selected[name] }

	writeSVG := func(name string, artifact interface{}) {
		if *svgDir == "" {
			return
		}
		s, ok := artifact.(svger)
		if !ok {
			return
		}
		svg, err := s.SVG()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: render %s: %v\n", name, err)
			return
		}
		path := filepath.Join(*svgDir, name+".svg")
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: write %s: %v\n", path, err)
			return
		}
		fmt.Printf("[wrote %s]\n", path)
	}

	// All result output flows through one error-latching writer: the
	// Format methods write unconditionally, and a full pipe or closed
	// stdout is surfaced once, as a non-zero exit, instead of silently
	// truncating the tables (the tables ARE the program's output).
	out := &errWriter{w: os.Stdout}

	type job struct {
		name string
		fn   func() interface{}
	}
	jobs := []job{
		{"example", func() interface{} { we := experiments.RunWorkedExample(); we.Format(out); return we }},
		{"table2", func() interface{} { t := experiments.RunTable2(opt); t.Format(out); return t }},
		{"table3", func() interface{} { t := experiments.RunTable3(opt); t.Format(out); return t }},
		{"table4", func() interface{} { t := experiments.RunTable4(opt); t.Format(out); return t }},
		{"table5", func() interface{} { t := experiments.RunTable5(opt); t.Format(out); return t }},
		{"tables6-7", func() interface{} {
			t6, t7 := experiments.RunTables6and7()
			t6.Format(out)
			t7.Format(out)
			return nil
		}},
		{"table8", func() interface{} { t := experiments.RunTable8(opt); t.Format(out); return t }},
		{"tables9-10", func() interface{} {
			t9, t10 := experiments.RunTables9and10(opt)
			t9.Format(out)
			t10.Format(out)
			return nil
		}},
		{"table11", func() interface{} { t := experiments.RunTable11(opt); t.Format(out); return t }},
		{"fig5", func() interface{} { f := experiments.RunFigure5(opt); f.Format(out); return f }},
		{"fig6", func() interface{} { f := experiments.RunFigure6(opt); f.Format(out); return f }},
		{"fig7", func() interface{} { f := experiments.RunFigure7(opt); f.Format(out); return f }},
		{"fig8", func() interface{} { f := experiments.RunFigure8(opt); f.Format(out); return f }},
		{"fig9", func() interface{} { f := experiments.RunFigure9(opt); f.Format(out); return f }},
		{"fig10", func() interface{} { f := experiments.RunFigure10(opt); f.Format(out); return f }},
		{"ablation", func() interface{} { t := experiments.RunAblation(opt); t.Format(out); return t }},
	}

	ran := 0
	for _, j := range jobs {
		if !want(j.name) {
			continue
		}
		start := time.Now()
		artifact := j.fn()
		if artifact != nil {
			writeSVG(j.name, artifact)
		}
		fmt.Fprintf(out, "[%s done in %v]\n\n", j.name, time.Since(start).Round(time.Millisecond))
		if *stats {
			dumpRegistry(j.name)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: nothing matched -run=%q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
	if out.err != nil {
		fmt.Fprintf(os.Stderr, "experiments: write results: %v\n", out.err)
		os.Exit(1)
	}
}

// errWriter latches the first write error so the Format methods (which
// return nothing) can write unconditionally and main can fail once.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	if err != nil {
		ew.err = err
	}
	return n, err
}

// dumpRegistry prints the cumulative metrics snapshot (solver runs,
// iterations, kernel timers) after an experiment, tagged with its name.
func dumpRegistry(name string) {
	snap := obs.Default().Snapshot()
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: snapshot: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "[metrics after %s]\n%s\n", name, out)
}
