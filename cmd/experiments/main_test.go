package main

import (
	"errors"
	"testing"

	"tmark/internal/experiments"
)

// brokenWriter fails every write — a closed stdout.
type brokenWriter struct{ calls int }

var errClosed = errors.New("stdout closed")

func (w *brokenWriter) Write(p []byte) (int, error) {
	w.calls++
	return 0, errClosed
}

// TestErrWriterSurfacesFormatFailures pins the fix for experiment tables
// vanishing into unchecked writes: a Format call against a failed sink
// must leave the error on the shared errWriter for main's final check.
func TestErrWriterSurfacesFormatFailures(t *testing.T) {
	sink := &brokenWriter{}
	out := &errWriter{w: sink}
	we := experiments.RunWorkedExample()
	we.Format(out)
	if !errors.Is(out.err, errClosed) {
		t.Fatalf("errWriter.err = %v, want %v", out.err, errClosed)
	}
	if sink.calls != 1 {
		t.Errorf("underlying writer hit %d times, want 1 (latched after first failure)", sink.calls)
	}
}
