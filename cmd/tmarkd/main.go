// Command tmarkd serves T-Mark classification over HTTP: datasets are
// loaded once at startup, models are built lazily and kept warm in an
// LRU cache, and concurrent /classify requests against the same model
// are coalesced into one lockstep batch solve.
//
// Usage:
//
//	tmarkd [-addr :8321] [-dataset name=spec]... [-default name]
//	       [-model-dir DIR] [-shard-workers URL,URL,...]
//	       [-alpha 0.8] [-gamma 0.6] [-lambda 0.7] [-epsilon 1e-8]
//	       [-maxiter 100] [-no-ica] [-topk K] [-workers N] [-seed N]
//	       [-cache 4] [-max-batch 8] [-queue 64] [-max-concurrent 2]
//	       [-max-body 1048576] [-drain-timeout 30s] [-retry-after 1s]
//	       [-checkpoint-dir DIR] [-checkpoint-every K]
//	tmarkd -shard-serve -model-dir DIR -shard-ref 'name@sha256:…#shard=i/M'
//	       [-addr :8331] [-drain-timeout 30s]
//
// Each -dataset flag loads one network under a name. The spec is either
// a file path — .json (hin.Graph JSON codec), .csv (from,to,relation
// edge list) or .coo (sparse-coordinate tensor text) — or the name of a
// built-in synthetic generator: example, dblp, movies, nus, acm or ring
// (seeded by -seed). With no -dataset and no -model-dir flag the
// synthetic DBLP network is served. -default selects the model used by
// requests that name none; it may stay empty when exactly one model is
// available. Duplicate -dataset names fail fast at flag parsing.
//
// -model-dir points at the content-addressed artifact registry written
// by `tmark build`. A request's model name that the registry knows is
// served by memory-mapping the compiled artifact — cold start in
// milliseconds instead of a full tensor normalisation — with the loaded
// graph of the same name as rebuild fallback if the blob fails its
// checksum. With -model-dir and no -dataset flags tmarkd serves the
// registry's models alone.
//
// The second form is the horizontal scale-out worker: -shard-serve
// loads one shard artifact written by `tmark build -shards M` and
// serves the per-iteration apply RPC (POST /v1/shard/apply, plus
// /v1/shard/info, /healthz, /metrics). A coordinator tmarkd started
// with -shard-workers validates at startup that the listed workers
// cover every shard of one model exactly once, then solves that
// model's batches through the fleet with a per-iteration reduction —
// bitwise identical to the single-process solve, degrading to local
// kernels (still bitwise identical) for a cooldown period if a worker
// dies mid-iteration.
//
// Endpoints: POST /v1/classify (seed labels in, per-node scores and
// link rankings out), GET /v1/rank?model=&top= (full-solve link-type
// ranking), GET /v1/models (every resolvable model and its content
// hash), POST /v1/ingest (batched edge deltas applied incrementally;
// each batch warm re-solves and seals a new model version, with the
// old versions still servable by pinned hash), GET /v1/diff?a=&b=
// (classification flips and link-type rank shifts between two sealed
// versions); /classify and /rank remain as frozen legacy aliases. Infra:
// /healthz (liveness), /readyz (503 while draining), and the
// observability set /metrics, /vars and /debug/pprof/.
//
// On SIGTERM or SIGINT the server stops admitting work (readyz flips to
// 503 so load balancers fail over), cancels in-flight solves — each
// returns within one solver iteration with a usable partial result —
// and shuts the listener down within -drain-timeout. Every 503 (load
// shed, drain, quarantined model) carries a Retry-After backoff hint
// (-retry-after). With -checkpoint-dir each /rank full solve snapshots
// its state every -checkpoint-every iterations and flushes a final
// snapshot during the drain, so the next process resumes it instead of
// recomputing from scratch.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"tmark/internal/artifact"
	"tmark/internal/dataset"
	"tmark/internal/hin"
	"tmark/internal/obs"
	"tmark/internal/shard"
	"tmark/internal/serve"
	"tmark/internal/tmark"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "tmarkd: %v\n", err)
		os.Exit(1)
	}
}

// datasetSpec is one parsed -dataset flag.
type datasetSpec struct{ name, spec string }

// datasetList collects repeated -dataset name=spec flags.
type datasetList []datasetSpec

func (d *datasetList) String() string {
	parts := make([]string, len(*d))
	for i, s := range *d {
		parts[i] = s.name + "=" + s.spec
	}
	return strings.Join(parts, ",")
}

func (d *datasetList) Set(v string) error {
	name, spec, ok := strings.Cut(v, "=")
	if !ok || name == "" || spec == "" {
		return fmt.Errorf("want name=path or name=builtin, got %q", v)
	}
	for _, s := range *d {
		if s.name == name {
			return fmt.Errorf("dataset %q declared twice", name)
		}
	}
	*d = append(*d, datasetSpec{name, spec})
	return nil
}

// run is main minus process concerns: it parses args, loads datasets,
// and serves until ctx is cancelled. Split out so tests can drive the
// whole wiring in-process.
func run(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("tmarkd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var sets datasetList
	fs.Var(&sets, "dataset", "load a network as name=path (.json/.csv/.coo) or name=builtin (repeatable)")
	var (
		addr     = fs.String("addr", ":8321", "listen address")
		def      = fs.String("default", "", "dataset served when a request names none")
		seed     = fs.Int64("seed", 1, "seed for the built-in synthetic generators")
		alpha    = fs.Float64("alpha", 0.8, "restart probability α")
		gamma    = fs.Float64("gamma", 0.6, "feature-channel scale γ")
		lambda   = fs.Float64("lambda", 0.7, "ICA confidence threshold λ")
		epsilon  = fs.Float64("epsilon", 1e-8, "convergence threshold ε")
		maxiter  = fs.Int("maxiter", 100, "maximum iterations per solve")
		noICA    = fs.Bool("no-ica", false, "disable the ICA label update (TensorRrCc mode)")
		topK     = fs.Int("topk", 0, "sparsify the feature channel to top-K neighbours (0 = dense)")
		workers  = fs.Int("workers", 0, "compute workers per solve (0 = GOMAXPROCS)")
		cache    = fs.Int("cache", serve.DefaultCacheSize, "warm models kept in the LRU cache")
		maxBatch = fs.Int("max-batch", serve.DefaultMaxBatch, "maximum queries coalesced into one lockstep solve")
		queue    = fs.Int("queue", serve.DefaultQueueDepth, "admission queue depth per model (full queue → 503)")
		maxConc  = fs.Int("max-concurrent", serve.DefaultMaxConcurrent, "batch solves running at once across all models")
		maxBody  = fs.Int64("max-body", serve.DefaultMaxBodyBytes, "maximum /classify request body bytes")
		drain    = fs.Duration("drain-timeout", 30*time.Second, "shutdown deadline after SIGTERM/SIGINT")
		modelDir = fs.String("model-dir", "", "artifact registry directory: models compiled by `tmark build` activate by mmap instead of rebuilding")
		ckDir    = fs.String("checkpoint-dir", "", "checkpoint /rank full solves into this directory and resume them across restarts")
		walDir   = fs.String("wal-dir", "", "write-ahead log directory for /v1/ingest: batches are fsync'd before applying and replayed after a crash")
		noScrub  = fs.Bool("no-scrub", false, "skip the startup registry scrub (with -model-dir)")
		ckEvery  = fs.Int("checkpoint-every", serve.DefaultCheckpointEvery, "snapshot cadence in iterations (with -checkpoint-dir)")
		retryDur = fs.Duration("retry-after", serve.DefaultRetryAfter, "Retry-After backoff hint stamped on 503 responses")
		quality  = fs.String("default-quality", "", "solve tier of requests that name none: exact, accelerated or fast (default exact)")
		shardServe   = fs.Bool("shard-serve", false, "run as a shard worker: serve one shard's apply RPC instead of the classify surface (requires -model-dir and -shard-ref)")
		shardRef     = fs.String("shard-ref", "", "shard artifact to serve, e.g. dblp#shard=0/2 (with -shard-serve)")
		shardWorkers = fs.String("shard-workers", "", "comma-separated base URLs of a shard worker fleet; matching models solve across it")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	defQuality, err := tmark.ParseQuality(*quality)
	if err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *shardServe {
		return runShardWorker(ctx, *addr, *modelDir, *shardRef, *drain, stderr)
	}
	if len(sets) == 0 && *modelDir == "" {
		sets = datasetList{{"dblp", "dblp"}}
	}

	datasets := make(map[string]*hin.Graph, len(sets))
	for _, s := range sets {
		g, err := dataset.LoadSpec(s.spec, *seed)
		if err != nil {
			return fmt.Errorf("dataset %s: %w", s.name, err)
		}
		datasets[s.name] = g
		fmt.Fprintf(stderr, "tmarkd: loaded %s (%s): %s\n", s.name, s.spec, g.Stats())
	}

	if *ckDir != "" {
		// Fail fast on an unusable directory: mid-solve save errors are
		// deliberately non-fatal, so a typo here would otherwise
		// checkpoint nothing.
		if err := os.MkdirAll(*ckDir, 0o755); err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
	}
	if *walDir != "" {
		// Same reasoning, with higher stakes: an unusable WAL directory
		// would reject every ingest.
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			return fmt.Errorf("wal dir: %w", err)
		}
	}
	srv, err := serve.New(serve.Options{
		Datasets: datasets,
		Default:  *def,
		ModelDir: *modelDir,
		Config: tmark.Config{
			Alpha: *alpha, Gamma: *gamma, Lambda: *lambda,
			Epsilon: *epsilon, MaxIterations: *maxiter,
			ICAUpdate: !*noICA, FeatureTopK: *topK,
			Workers: *workers,
		},
		DefaultQuality:  defQuality,
		CacheSize:       *cache,
		MaxBatch:        *maxBatch,
		QueueDepth:      *queue,
		MaxConcurrent:   *maxConc,
		MaxBodyBytes:    *maxBody,
		RetryAfter:      *retryDur,
		CheckpointDir:   *ckDir,
		CheckpointEvery: *ckEvery,
		WALDir:          *walDir,
		ScrubRegistry:   !*noScrub,
		ShardWorkers:    splitList(*shardWorkers),
	})
	if err != nil {
		return err
	}
	if rep := srv.ScrubReport(); rep != nil && rep.Dirty() {
		fmt.Fprintf(stderr, "tmarkd: registry %s\n", rep)
	}
	names := make([]string, 0, len(datasets))
	for name := range datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(stderr, "tmarkd: serving %s on %s\n", strings.Join(names, ", "), *addr)
	return srv.ListenAndServe(ctx, *addr, *drain)
}

// splitList parses a comma-separated flag value, dropping empty items.
func splitList(v string) []string {
	var out []string
	for _, p := range strings.Split(v, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runShardWorker is the -shard-serve mode: load one shard artifact
// from the registry and serve its per-iteration apply RPC until ctx is
// cancelled. The worker is stateless between requests, so shutdown
// needs no drain protocol beyond closing the listener.
func runShardWorker(ctx context.Context, addr, modelDir, refStr string, drain time.Duration, stderr io.Writer) error {
	if modelDir == "" || refStr == "" {
		return errors.New("-shard-serve requires -model-dir and -shard-ref")
	}
	ref, err := artifact.ParseRef(refStr)
	if err != nil {
		return fmt.Errorf("shard ref: %w", err)
	}
	if ref.Of == 0 {
		return fmt.Errorf("shard ref %q has no #shard=i/M fragment", refStr)
	}
	reg, err := artifact.OpenRegistry(modelDir)
	if err != nil {
		return err
	}
	art, err := reg.OpenShardRef(ref)
	if err != nil {
		return err
	}
	defer art.Close()
	w, err := shard.NewWorker(art, false)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle("/", w.Handler())
	mux.Handle("/metrics", obs.Default().Handler())
	mux.Handle("/vars", obs.Default().JSONHandler())

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux}
	info := w.Info()
	fmt.Fprintf(stderr, "tmarkd: shard worker %d/%d of sha256:%s on %s\n",
		info.Shard, info.Of, info.Parent[:12], ln.Addr())
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return srv.Shutdown(shCtx)
}
