package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tmark/internal/dataset"
	"tmark/internal/fault"
	"tmark/internal/serve"
	"tmark/internal/tmark"
)

func TestDatasetListSet(t *testing.T) {
	var d datasetList
	if err := d.Set("a=example"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := d.Set("b=net.json"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	for _, bad := range []string{"", "noequals", "=path", "name="} {
		if err := d.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted, want error", bad)
		}
	}
	if err := d.Set("a=other"); err == nil {
		t.Errorf("duplicate name accepted, want error")
	}
	if got := d.String(); got != "a=example,b=net.json" {
		t.Errorf("String() = %q", got)
	}
}

func TestLoadDatasetBuiltins(t *testing.T) {
	for _, name := range []string{"example", "dblp", "movies", "nus", "acm"} {
		g, err := dataset.LoadSpec(name, 1)
		if err != nil {
			t.Errorf("builtin %s: %v", name, err)
			continue
		}
		if g.N() == 0 {
			t.Errorf("builtin %s: empty graph", name)
		}
	}
	if _, err := dataset.LoadSpec("nope", 1); err == nil {
		t.Error("unknown builtin accepted")
	}
	if _, err := dataset.LoadSpec("net.parquet", 1); err == nil {
		t.Error("unsupported extension accepted")
	}
	if _, err := dataset.LoadSpec("missing.json", 1); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadDatasetFiles(t *testing.T) {
	dir := t.TempDir()

	jsonPath := filepath.Join(dir, "net.json")
	if err := dataset.Example().SaveFile(jsonPath); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	g, err := dataset.LoadSpec(jsonPath, 1)
	if err != nil {
		t.Fatalf("load .json: %v", err)
	}
	if g.N() != dataset.Example().N() {
		t.Errorf(".json round trip: %d nodes, want %d", g.N(), dataset.Example().N())
	}

	csvPath := filepath.Join(dir, "net.csv")
	if err := os.WriteFile(csvPath, []byte("from,to,relation,weight\na,b,r,1\nb,a,r,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if g, err = dataset.LoadSpec(csvPath, 1); err != nil {
		t.Fatalf("load .csv: %v", err)
	} else if g.N() != 2 {
		t.Errorf(".csv: %d nodes, want 2", g.N())
	}

	cooPath := filepath.Join(dir, "net.coo")
	if err := os.WriteFile(cooPath, []byte("coo 3 1 2\nl 0 0\nl 2 1\ne 0 0 1\ne 0 1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if g, err = dataset.LoadSpec(cooPath, 1); err != nil {
		t.Fatalf("load .coo: %v", err)
	} else if g.N() != 3 || g.Q() != 2 {
		t.Errorf(".coo: (%d nodes, %d classes), want (3, 2)", g.N(), g.Q())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	ctx := context.Background()
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{"-dataset", "broken"},
		{"-dataset", "x=missing.json"},
		{"-dataset", "x=example", "-default", "y"},
		{"-dataset", "x=example", "x_trailing_arg"},
		{"-dataset", "x=example", "-alpha", "2"},
	}
	for _, args := range cases {
		if err := run(ctx, args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestRunServesAndDrains drives the full wiring in-process: run() on a
// real port with a .coo dataset, a /classify round trip, then a context
// cancellation standing in for SIGTERM.
func TestRunServesAndDrains(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port for run; re-bind races are unlikely in-process

	cooPath := filepath.Join(t.TempDir(), "net.coo")
	coo := "coo 6 2 2\nl 0 0\nl 1 1\ne 0 0 2\ne 0 2 4\ne 0 1 3\ne 0 3 5\ne 1 4 5\ne 1 5 0\n"
	if err := os.WriteFile(cooPath, []byte(coo), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	var logs bytes.Buffer
	go func() {
		done <- run(ctx, []string{
			"-addr", addr,
			"-dataset", "tiny=" + cooPath,
			"-workers", "1",
			"-drain-timeout", "5s",
		}, &logs)
	}()

	base := "http://" + addr
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became healthy; logs:\n%s", logs.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	body := `{"seeds":[0],"scores":true}`
	resp, err := http.Post(base+"/classify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("classify: %v", err)
	}
	var out serve.ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d", resp.StatusCode)
	}
	if out.Dataset != "tiny" || len(out.Scores) != 6 {
		t.Fatalf("response dataset %q with %d scores, want tiny with 6", out.Dataset, len(out.Scores))
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after cancellation")
	}
	if !strings.Contains(logs.String(), "serving tiny on") {
		t.Errorf("startup log missing; got:\n%s", logs.String())
	}
}

// TestRunSIGTERMFlushesFinalCheckpoint proves the shutdown ordering the
// checkpoint feature depends on: a SIGTERM (context cancellation)
// arriving while a /rank full solve is mid-flight must drain cleanly
// AND flush that solve's final snapshot to -checkpoint-dir before
// run() returns. The snapshot cadence is set far beyond the solve
// length, so the only way a checkpoint file can exist afterwards is
// the drain-time final flush.
func TestRunSIGTERMFlushesFinalCheckpoint(t *testing.T) {
	t.Cleanup(fault.Reset)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cooPath := filepath.Join(t.TempDir(), "net.coo")
	coo := "coo 6 2 2\nl 0 0\nl 1 1\ne 0 0 2\ne 0 2 4\ne 0 1 3\ne 0 3 5\ne 1 4 5\ne 1 5 0\n"
	if err := os.WriteFile(cooPath, []byte(coo), 0o644); err != nil {
		t.Fatal(err)
	}
	ckDir := t.TempDir()

	// The solve signals its first kernel pass through the fault
	// registry, then crawls so the cancellation lands mid-flight.
	started := make(chan struct{})
	var once sync.Once
	fault.Inject(fault.TensorNodeBatch, func(...any) {
		once.Do(func() { close(started) })
		time.Sleep(time.Millisecond)
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	var logs bytes.Buffer
	go func() {
		done <- run(ctx, []string{
			"-addr", addr,
			"-dataset", "tiny=" + cooPath,
			"-workers", "1",
			"-epsilon", "1e-300",
			"-maxiter", "100000",
			"-drain-timeout", "10s",
			"-checkpoint-dir", ckDir,
			"-checkpoint-every", "1000000", // periodic saves never fire
		}, &logs)
	}()

	base := "http://" + addr
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became healthy; logs:\n%s", logs.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	rankDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/rank")
		if err != nil {
			rankDone <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		rankDone <- resp.StatusCode
	}()

	<-started // the rank solve is inside its first iterations
	cancel()  // SIGTERM

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after cancellation")
	}
	if status := <-rankDone; status != http.StatusOK {
		t.Fatalf("/rank during drain: status %d, want 200 (partial result)", status)
	}

	// run() has returned; the final flush must already be on disk and
	// must be a valid, resumable mid-flight snapshot.
	files, err := filepath.Glob(filepath.Join(ckDir, "*.ckpt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("checkpoint files after shutdown: %v %v, want exactly one", files, err)
	}
	cp, err := tmark.LoadCheckpointFile(files[0])
	if err != nil {
		t.Fatalf("final checkpoint does not decode: %v", err)
	}
	if cp.Iter <= 0 || cp.Iter >= 100000 {
		t.Fatalf("final checkpoint at iteration %d, want mid-flight", cp.Iter)
	}
}

// TestRunWALRestartReplays is the end-to-end kill -9 drill: a daemon
// started with -wal-dir takes ingest batches, dies without any
// shutdown handshake, and a second daemon over the same directories
// replays the log — serving the sealed post-ingest version and
// answering a resent Idempotency-Key from the rebuilt dedup window.
func TestRunWALRestartReplays(t *testing.T) {
	cooPath := filepath.Join(t.TempDir(), "net.coo")
	coo := "coo 6 2 2\nl 0 0\nl 1 1\ne 0 0 2\ne 0 2 4\ne 0 1 3\ne 0 3 5\ne 1 4 5\ne 1 5 0\n"
	if err := os.WriteFile(cooPath, []byte(coo), 0o644); err != nil {
		t.Fatal(err)
	}
	modelDir, walDir := t.TempDir(), t.TempDir()

	// startDaemon boots run() on a fresh port and waits for /healthz.
	startDaemon := func(t *testing.T) (base string, stop func()) {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		addr := ln.Addr().String()
		ln.Close()
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		var logs bytes.Buffer
		go func() {
			done <- run(ctx, []string{
				"-addr", addr,
				"-dataset", "tiny=" + cooPath,
				"-model-dir", modelDir,
				"-wal-dir", walDir,
				"-workers", "1",
				"-drain-timeout", "5s",
			}, &logs)
		}()
		base = "http://" + addr
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, herr := http.Get(base + "/healthz")
			if herr == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("daemon never became healthy; logs:\n%s", logs.String())
			}
			time.Sleep(10 * time.Millisecond)
		}
		return base, func() {
			cancel()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("run did not return after cancellation")
			}
		}
	}

	ingest := func(t *testing.T, base, key string) *serve.IngestResponse {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+"/v1/ingest",
			strings.NewReader(`{"model":"tiny","deltas":[{"op":"add","from":0,"to":4,"relation":0,"weight":0.5}]}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("ingest: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
		var out serve.IngestResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode ingest: %v", err)
		}
		return &out
	}

	base1, stop1 := startDaemon(t)
	first := ingest(t, base1, "job-9")
	if first.Seq != 1 || !first.Sealed {
		t.Fatalf("first ingest: %+v", first)
	}
	// The "crash": tear the process down with no flush of its own. The
	// WAL was fsync'd at append time; nothing else is needed.
	stop1()

	base2, stop2 := startDaemon(t)
	defer stop2()
	resp, err := http.Post(base2+"/classify", "application/json", strings.NewReader(`{"model":"tiny","seeds":[0]}`))
	if err != nil {
		t.Fatalf("classify after restart: %v", err)
	}
	var cls serve.ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&cls); err != nil {
		t.Fatalf("decode classify: %v", err)
	}
	resp.Body.Close()
	if cls.ModelHash != first.NewHash {
		t.Fatalf("restarted daemon serves %s, want the replayed %s", cls.ModelHash, first.NewHash)
	}
	dup := ingest(t, base2, "job-9")
	if !dup.Duplicate || dup.NewHash != first.NewHash || dup.Seq != first.Seq {
		t.Fatalf("restarted daemon re-applied a committed key: %+v", dup)
	}
}
