// Command benchjson converts `go test -bench` text output (read from
// stdin) into machine-readable JSON on stdout, so benchmark runs can be
// archived and diffed across commits:
//
//	go test -run xxx -bench BenchmarkBatchedVsSequential -benchmem ./internal/tmark/ |
//	    go run ./cmd/benchjson > BENCH_3.json
//
// The parser understands the standard benchmark line shape
//
//	BenchmarkName/sub=case-4    123    45678 ns/op    90 B/op    1 allocs/op
//
// plus the goos/goarch/pkg/cpu header lines; everything else (PASS, ok,
// coverage) is ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`

	// Extra holds any further "value unit" pairs (e.g. MB/s or custom
	// ReportMetric units) keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the whole converted run.
type Report struct {
	Date       string      `json:"date"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep := Report{Date: time.Now().UTC().Format(time.RFC3339)}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}

// parseBench parses one "BenchmarkX-8  N  v unit  v unit ..." line.
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs}
	for q := 2; q+1 < len(fields); q += 2 {
		v, err := strconv.ParseFloat(fields[q], 64)
		if err != nil {
			continue
		}
		switch fields[q+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[fields[q+1]] = v
		}
	}
	return b, true
}
