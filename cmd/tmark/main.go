// Command tmark classifies the unlabelled nodes of a HIN and ranks its
// link types per class with the T-Mark algorithm.
//
// Usage:
//
//	tmark -in network.json [-csv] [-alpha 0.8] [-gamma 0.6] [-lambda 0.7]
//	      [-epsilon 1e-8] [-maxiter 100] [-no-ica] [-topk K] [-top 10]
//	      [-explain node] [-json] [-save result.json] [-warm result.json]
//	      [-tune] [-workers N] [-timeout 30s] [-stats] [-metrics-addr :9090]
//	      [-checkpoint-dir DIR] [-checkpoint-every K] [-resume FILE|auto]
//
// Fault tolerance: -checkpoint-dir snapshots the solver state every
// -checkpoint-every iterations (and flushes a final snapshot when the
// solve is interrupted) to DIR/<input>-<confighash>.ckpt. -resume
// restarts a solve from a snapshot — bitwise identical to a run that
// was never interrupted; "auto" resumes from the file -checkpoint-dir
// would write when it exists and matches, and starts cold otherwise.
//
// The input is a graph in the JSON format written by cmd/datagen or
// hin.Graph.SaveFile; with -csv it is a from,to,relation[,weight] edge
// list instead (labels must then already be in the file, so CSV inputs
// are mostly useful with -rank-only style inspection). Labelled nodes are
// the training seeds; the tool prints the predicted class per unlabelled
// node and the top link types per class. -explain prints the channel
// decomposition of one node's scores; -json switches the report to a
// machine-readable document.
//
// Observability: -stats prints the run's per-kernel wall-time breakdown
// to stderr; -metrics-addr serves the process metrics registry at
// /metrics (Prometheus text format), /vars (JSON) and the pprof
// endpoints under /debug/pprof/. -timeout bounds the solve, and an
// interrupt (Ctrl-C) cancels it; either way the partial result obtained
// so far is still reported.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"tmark/pkg/hin"
	"tmark/pkg/obs"
	"tmark/pkg/tmark"
	"tmark/pkg/tune"
)

type report struct {
	Stats       string             `json:"stats"`
	Irreducible bool               `json:"irreducible"`
	Converged   bool               `json:"converged"`
	Iterations  int                `json:"iterations"`
	Stopped     string             `json:"stopped,omitempty"`
	Predictions []prediction       `json:"predictions"`
	LinkRanking map[string][]score `json:"linkRanking"`
}

type prediction struct {
	Node       int     `json:"node"`
	Name       string  `json:"name,omitempty"`
	Class      string  `json:"class"`
	Confidence float64 `json:"confidence"`
}

type score struct {
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tmark: ")
	// Subcommands dispatch before the classic flag surface so
	// `tmark -in …` keeps working unchanged.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "build":
			runBuild(os.Args[2:])
			return
		case "ingest":
			runIngest(os.Args[2:])
			return
		case "diff":
			runDiff(os.Args[2:])
			return
		}
	}
	var (
		in          = flag.String("in", "", "input network (required)")
		csvIn       = flag.Bool("csv", false, "input is a from,to,relation[,weight] CSV edge list")
		alpha       = flag.Float64("alpha", 0.8, "restart probability α")
		gamma       = flag.Float64("gamma", 0.6, "feature-channel scale γ")
		lambda      = flag.Float64("lambda", 0.7, "ICA confidence threshold λ")
		epsilon     = flag.Float64("epsilon", 1e-8, "convergence threshold ε")
		maxiter     = flag.Int("maxiter", 100, "maximum iterations per class")
		noICA       = flag.Bool("no-ica", false, "disable the ICA label update (TensorRrCc mode)")
		topK        = flag.Int("topk", 0, "sparsify the feature channel to top-K neighbours (0 = dense)")
		top         = flag.Int("top", 10, "link types to print per class")
		explain     = flag.Int("explain", -1, "print the channel decomposition for this node")
		asJSON      = flag.Bool("json", false, "emit a JSON report instead of text")
		save        = flag.String("save", "", "persist the solved result (stationary vectors) to this file")
		warm        = flag.String("warm", "", "warm-start from a result previously written with -save")
		auto        = flag.Bool("tune", false, "select alpha/gamma by cross-validation over the labelled nodes before solving")
		workers     = flag.Int("workers", 0, "compute workers (0 = GOMAXPROCS, 1 = serial)")
		timeout     = flag.Duration("timeout", 0, "abort the solve after this duration (0 = none)")
		stats       = flag.Bool("stats", false, "print the run's per-kernel time breakdown to stderr")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /vars and /debug/pprof on this address")
		ckptDir     = flag.String("checkpoint-dir", "", "snapshot the solver state into this directory")
		ckptEvery   = flag.Int("checkpoint-every", 8, "snapshot cadence in iterations (with -checkpoint-dir)")
		resume      = flag.String("resume", "", "resume from this checkpoint file; \"auto\" = the -checkpoint-dir file if present")
		quality     = flag.String("quality", "", "solve tier: exact (default), accelerated (same predictions, fewer iterations) or fast (linearized approximation)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *metricsAddr != "" {
		addr, shutdown, err := obs.Serve(*metricsAddr)
		if err != nil {
			log.Fatalf("metrics server: %v", err)
		}
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", addr)
		defer shutdown(context.Background())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	g, err := load(*in, *csvIn)
	if err != nil {
		log.Fatalf("load %s: %v", *in, err)
	}

	cfg := tmark.Config{
		Alpha: *alpha, Gamma: *gamma, Lambda: *lambda,
		Epsilon: *epsilon, MaxIterations: *maxiter,
		ICAUpdate: !*noICA, FeatureTopK: *topK,
		Workers: *workers,
	}
	if *auto {
		tr, err := tune.Tune(g, cfg, tune.DefaultGrid(), 3, rand.New(rand.NewSource(1)))
		if err != nil {
			log.Fatalf("tune: %v", err)
		}
		cfg = tr.Best
		fmt.Fprintf(os.Stderr, "tuned: alpha=%.2f gamma=%.2f (cv accuracy %.3f over %d folds)\n",
			cfg.Alpha, cfg.Gamma, tr.Points[0].Accuracy, tr.Folds)
	}
	model, err := tmark.New(g, cfg)
	if err != nil {
		log.Fatalf("build model: %v", err)
	}
	var opts []tmark.RunOption
	var runStats tmark.RunStats
	if *stats {
		opts = append(opts, tmark.WithStats(&runStats))
	}
	switch tier, err := tmark.ParseQuality(*quality); {
	case err != nil:
		log.Fatal(err)
	case tier == tmark.QualityAccelerated:
		opts = append(opts, tmark.WithAcceleration(true))
	case tier == tmark.QualityFast:
		if *resume != "" {
			log.Fatal("-quality fast and -resume are mutually exclusive: the linearized tier has no iterative state to restore")
		}
		opts = append(opts, tmark.WithApproximate(true))
	}
	if *ckptDir != "" {
		// Fail fast on an unusable directory: mid-solve save errors are
		// deliberately non-fatal (a sick disk must not kill a healthy
		// solve), so a typo here would otherwise checkpoint nothing.
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			log.Fatalf("checkpoint dir: %v", err)
		}
		sink := &tmark.DirSink{Dir: *ckptDir, Name: checkpointName(*in, model)}
		opts = append(opts, tmark.WithCheckpoint(sink, *ckptEvery))
	}
	if *resume != "" {
		if *warm != "" {
			log.Fatal("-resume and -warm are mutually exclusive: a checkpoint restores mid-solve state, a warm start begins a new solve")
		}
		path := *resume
		auto := path == "auto"
		if auto {
			if *ckptDir == "" {
				log.Fatal("-resume auto requires -checkpoint-dir")
			}
			path = filepath.Join(*ckptDir, checkpointName(*in, model))
		}
		switch cp, err := tmark.LoadCheckpointFile(path); {
		case err == nil:
			if verr := model.ValidateCheckpoint(cp); verr != nil {
				if !auto {
					log.Fatalf("resume %s: %v", path, verr)
				}
				fmt.Fprintf(os.Stderr, "checkpoint %s ignored (%v); starting cold\n", path, verr)
			} else {
				opts = append(opts, tmark.ResumeFrom(cp))
				fmt.Fprintf(os.Stderr, "resuming from %s (iteration %d)\n", path, cp.Iter)
			}
		case auto && os.IsNotExist(err):
			// No snapshot yet: a cold start that will write one.
		default:
			log.Fatalf("resume %s: %v", path, err)
		}
	}
	var res *tmark.Result
	if *warm != "" {
		prev, err := tmark.LoadResultFile(*warm)
		if err != nil {
			log.Fatalf("load warm start: %v", err)
		}
		res = model.RunWarmContext(ctx, prev, opts...)
	} else {
		res = model.RunContext(ctx, opts...)
	}
	if res.Stopped != nil {
		fmt.Fprintf(os.Stderr, "run stopped early (%s): %v; reporting partial result\n", res.Reason, res.Stopped)
	}
	if *stats {
		fmt.Fprint(os.Stderr, runStats.String())
	}
	if *save != "" {
		if err := res.SaveFile(*save); err != nil {
			log.Fatalf("save result: %v", err)
		}
		fmt.Fprintf(os.Stderr, "saved result to %s\n", *save)
	}

	if *explain >= 0 {
		if *explain >= g.N() {
			log.Fatalf("explain: node %d out of range %d", *explain, g.N())
		}
		for c := range g.Classes {
			if _, err := fmt.Fprintln(os.Stdout, model.Explain(res, *explain, c)); err != nil {
				log.Fatalf("write report: %v", err)
			}
		}
		return
	}

	rep := buildReport(g, model, res, *top)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatalf("encode: %v", err)
		}
		return
	}
	// A full pipe or closed stdout must fail the run: the report IS the
	// program's output, and `tmark ... > /full/disk` exiting 0 with a
	// truncated report is silent data loss.
	if err := printReport(os.Stdout, g, rep); err != nil {
		log.Fatalf("write report: %v", err)
	}
}

// errWriter latches the first write error so a report printer can write
// unconditionally and check once at the end.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	if err != nil {
		ew.err = err
	}
	return n, err
}

// checkpointName derives the snapshot filename from the input file and
// the model's hyper-parameter hash, so different configs never clobber
// (or wrongly resume) each other's snapshots.
func checkpointName(in string, model *tmark.Model) string {
	base := strings.TrimSuffix(filepath.Base(in), filepath.Ext(in))
	return fmt.Sprintf("%s-%016x.ckpt", base, model.ConfigHash())
}

func load(path string, csvIn bool) (*hin.Graph, error) {
	if !csvIn {
		return hin.LoadFile(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return hin.ReadEdgeCSV(f)
}

func buildReport(g *hin.Graph, model *tmark.Model, res *tmark.Result, top int) *report {
	rep := &report{
		Stats:       g.Stats().String(),
		Irreducible: model.Irreducible(),
		Converged:   res.Converged(),
		Iterations:  res.MaxIterations(),
		LinkRanking: map[string][]score{},
	}
	if res.Stopped != nil {
		rep.Stopped = res.Reason.String()
	}
	pred := res.Predict()
	probs := res.LiftedProbabilities()
	for i := 0; i < g.N(); i++ {
		if g.Labeled(i) {
			continue
		}
		rep.Predictions = append(rep.Predictions, prediction{
			Node: i, Name: g.Nodes[i].Name,
			Class:      g.Classes[pred[i]],
			Confidence: probs.At(i, pred[i]),
		})
	}
	for c, class := range g.Classes {
		ranked := res.LinkRanking(c)
		limit := top
		if limit > len(ranked) {
			limit = len(ranked)
		}
		var scores []score
		for _, rs := range ranked[:limit] {
			scores = append(scores, score{Name: g.Relations[rs.Relation].Name, Score: rs.Score})
		}
		rep.LinkRanking[class] = scores
	}
	return rep
}

func printReport(w io.Writer, g *hin.Graph, rep *report) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "network: %s\n", rep.Stats)
	if !rep.Irreducible {
		fmt.Fprintln(ew, "note: adjacency tensor is reducible; uniqueness guarantees weakened")
	}
	if rep.Stopped != "" {
		fmt.Fprintf(ew, "note: run stopped early (%s); predictions are partial\n", rep.Stopped)
	}
	if !rep.Converged {
		fmt.Fprintf(ew, "note: not all classes converged within %d iterations\n", rep.Iterations)
	}
	fmt.Fprintln(ew, "\npredictions for unlabelled nodes:")
	for p, pr := range rep.Predictions {
		if p >= 50 {
			fmt.Fprintf(ew, "  … %d more\n", len(rep.Predictions)-p)
			break
		}
		name := pr.Name
		if name == "" {
			name = fmt.Sprintf("node %d", pr.Node)
		}
		fmt.Fprintf(ew, "  %-30s → %-20s (confidence %.3f)\n", name, pr.Class, pr.Confidence)
	}
	fmt.Fprintln(ew, "\nlink-type relevance per class:")
	for _, class := range g.Classes {
		fmt.Fprintf(ew, "  %s:\n", class)
		for _, s := range rep.LinkRanking[class] {
			fmt.Fprintf(ew, "    %-24s %.4f\n", s.Name, s.Score)
		}
	}
	return ew.err
}
