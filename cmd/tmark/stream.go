package main

// `tmark ingest` is the offline twin of tmarkd's POST /v1/ingest: it
// loads a network, applies one batched edge-delta mutation through the
// streaming engine — renormalising only the touched tensor columns and
// tubes — seals the resulting model version into the registry, and
// prints the new name@sha256:… reference. The engine solves the base
// model first so the post-ingest re-solve warm-restarts from the
// previous stationary state, exactly as the long-running daemon would.
//
// Usage:
//
//	tmark ingest -data SPEC -deltas FILE -model-dir DIR [-name NAME]
//	             [-alpha 0.8] [-gamma 0.6] [-lambda 0.7] [-epsilon 1e-8]
//	             [-maxiter 100] [-no-ica] [-topk K] [-seed N] [-workers N]
//
// FILE holds one JSON array of deltas:
//
//	[{"op":"add","from":0,"to":14,"relation":2,"weight":1}, …]
//
// ops are "add" (accumulate, creating the edge if absent), "update"
// (replace an existing edge's weight) and "remove" (delete; no weight).
//
// `tmark diff` compares two sealed model versions: per-node
// classification flips and per-class link-type ranking shifts between
// the full solves of A and B. Solves run with one worker so the output
// is deterministic and golden-testable.
//
// Usage:
//
//	tmark diff -model-dir DIR [-top K] [-json] A B
//
// A and B are artifact references (name, name@sha256:… or sha256:…)
// resolving in -model-dir — typically two versions sealed by ingest.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"tmark/internal/artifact"
	"tmark/internal/dataset"
	"tmark/internal/hin"
	"tmark/internal/stream"
	itmark "tmark/internal/tmark"
	"tmark/internal/wal"
)

func runIngest(args []string) {
	fs := flag.NewFlagSet("tmark ingest", flag.ExitOnError)
	var (
		data     = fs.String("data", "", "network to mutate: a .json/.csv/.coo file or a built-in generator name (required)")
		deltas   = fs.String("deltas", "", "JSON file holding one array of edge deltas (required)")
		modelDir = fs.String("model-dir", "", "artifact registry the sealed versions land in (required)")
		name     = fs.String("name", "", "reference name to tag with the new version (default: the spec's base name)")
		seed     = fs.Int64("seed", 1, "seed for the built-in synthetic generators")
		alpha    = fs.Float64("alpha", 0.8, "restart probability α")
		gamma    = fs.Float64("gamma", 0.6, "feature-channel scale γ")
		lambda   = fs.Float64("lambda", 0.7, "ICA confidence threshold λ")
		epsilon  = fs.Float64("epsilon", 1e-8, "convergence threshold ε")
		maxiter  = fs.Int("maxiter", 100, "maximum iterations per solve")
		noICA    = fs.Bool("no-ica", false, "disable the ICA label update (TensorRrCc mode)")
		topK     = fs.Int("topk", 0, "sparsify the feature channel to top-K neighbours (0 = dense)")
		workers  = fs.Int("workers", 0, "compute workers (0 = GOMAXPROCS)")
		walDir   = fs.String("wal-dir", "", "write-ahead log directory: the batch is fsync'd before applying, and any log left by a crashed run replays first")
	)
	_ = fs.Parse(args)
	if *data == "" || *deltas == "" || *modelDir == "" {
		fs.Usage()
		os.Exit(2)
	}
	if fs.NArg() > 0 {
		log.Fatalf("ingest: unexpected arguments: %v", fs.Args())
	}
	batch, err := loadDeltas(*deltas)
	if err != nil {
		log.Fatalf("ingest: %v", err)
	}
	g, err := dataset.LoadSpec(*data, *seed)
	if err != nil {
		log.Fatalf("ingest: load %s: %v", *data, err)
	}
	cfg := itmark.Config{
		Alpha: *alpha, Gamma: *gamma, Lambda: *lambda,
		Epsilon: *epsilon, MaxIterations: *maxiter,
		ICAUpdate: !*noICA, FeatureTopK: *topK,
		Workers: *workers,
	}
	reg, err := artifact.OpenRegistry(*modelDir)
	if err != nil {
		log.Fatalf("ingest: %v", err)
	}
	tag := *name
	if tag == "" {
		tag = strings.TrimSuffix(filepath.Base(*data), filepath.Ext(*data))
	}
	if !artifact.ValidName(tag) {
		log.Fatalf("ingest: %q is not a valid model name (use -name; want [A-Za-z0-9._-], not starting with . or -)", tag)
	}
	var engOpts []stream.EngineOption
	if *walDir != "" {
		l, err := wal.Open(*walDir, wal.Options{})
		if err != nil {
			log.Fatalf("ingest: %v", err)
		}
		engOpts = append(engOpts, stream.WithWAL(l))
	}
	eng, err := stream.NewEngine(tag, g, cfg, reg, engOpts...)
	if err != nil {
		log.Fatalf("ingest: %v", err)
	}
	// Solve the base model so the post-ingest re-solve warm-restarts.
	if _, err := eng.Solve(context.Background()); err != nil {
		log.Fatalf("ingest: base solve: %v", err)
	}
	res, err := eng.Apply(context.Background(), batch)
	if err != nil {
		log.Fatalf("ingest: apply: %v", err)
	}
	mode := "cold"
	if res.Warm {
		mode = "warm"
	}
	fmt.Fprintf(os.Stderr, "applied %d deltas (%d coordinates): touched %d columns, %d tubes; %s re-solve in %d iterations\n",
		res.Deltas, res.Changes, res.TouchedColumns, res.TouchedTubes, mode, res.Iterations)
	fmt.Fprintf(os.Stderr, "sealed seq %d: sha256:%s -> sha256:%s\n", res.Seq, res.OldHash[:12], res.NewHash[:12])
	// The reference is the command's output: pin it in requests or diffs.
	fmt.Println(artifact.Ref{Name: tag, Hash: res.NewHash}.String())
}

// loadDeltas reads one JSON array of edge deltas, strictly: unknown
// fields and trailing data error, like the HTTP decoder.
func loadDeltas(path string) ([]stream.Delta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var batch []stream.Delta
	if err := dec.Decode(&batch); err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("%s: trailing data after the delta array", path)
	}
	if err := stream.ValidateDeltas(batch); err != nil {
		return nil, err
	}
	return batch, nil
}

func runDiff(args []string) {
	fs := flag.NewFlagSet("tmark diff", flag.ExitOnError)
	var (
		modelDir = fs.String("model-dir", "", "artifact registry holding the two versions (required)")
		top      = fs.Int("top", 0, "bound the flips and rank shifts reported (0 = all)")
		asJSON   = fs.Bool("json", false, "emit the diff as JSON instead of text")
	)
	_ = fs.Parse(args)
	if *modelDir == "" || fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: tmark diff -model-dir DIR [-top K] [-json] A B")
		fs.PrintDefaults()
		os.Exit(2)
	}
	reg, err := artifact.OpenRegistry(*modelDir)
	if err != nil {
		log.Fatalf("diff: %v", err)
	}
	d, err := diffRefs(reg, fs.Arg(0), fs.Arg(1))
	if err != nil {
		log.Fatalf("diff: %v", err)
	}
	if *top > 0 {
		if len(d.Flips) > *top {
			d.Flips = d.Flips[:*top]
		}
		if len(d.Shifts) > *top {
			d.Shifts = d.Shifts[:*top]
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			log.Fatalf("diff: encode: %v", err)
		}
		return
	}
	if err := d.Render(os.Stdout); err != nil {
		log.Fatalf("diff: write: %v", err)
	}
}

// diffRefs opens, activates and fully solves two sealed versions and
// diffs their predictions and link-type rankings. Both solves run with
// the stored config but one worker, so the output is deterministic for
// a given pair of blobs.
func diffRefs(reg *artifact.Registry, refA, refB string) (*stream.Diff, error) {
	ra, err := solveRef(reg, refA)
	if err != nil {
		return nil, err
	}
	rb, err := solveRef(reg, refB)
	if err != nil {
		return nil, err
	}
	return stream.DiffResults(refA, refB, ra.graph, ra.res, rb.res)
}

type solvedRef struct {
	graph *hin.Graph
	res   *itmark.Result
}

// solveRef activates one reference and runs its full solve.
func solveRef(reg *artifact.Registry, refStr string) (*solvedRef, error) {
	ref, err := artifact.ParseRef(refStr)
	if err != nil {
		return nil, err
	}
	a, _, err := reg.OpenRef(ref)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", refStr, err)
	}
	defer a.Close()
	cfg := a.BuiltConfig
	cfg.Workers = 1
	m, err := a.Activate(cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", refStr, err)
	}
	return &solvedRef{graph: m.Graph(), res: m.Run()}, nil
}
