package main

// Golden test for the `tmark diff` text format: seal two model versions
// through the streaming engine — the second one edge away from the
// first, chosen so the mutation flips a node — and pin Render's exact
// output. Regenerate with:
//
//	go test ./cmd/tmark/ -run TestDiffGolden -update

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tmark/internal/artifact"
	"tmark/internal/hin"
	"tmark/internal/stream"
	itmark "tmark/internal/tmark"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/diff.golden")

// diffGraph is a two-community graph with one boundary node (b0) held
// in the theory camp by a single weak tie; the test's delta adds a
// heavy systems-side edge that flips it.
func diffGraph() *hin.Graph {
	g := hin.New("theory", "systems")
	for i := 0; i < 4; i++ {
		g.AddNode(fmt.Sprintf("t%d", i), nil)
	}
	g.AddNode("b0", nil) // node 4: the boundary
	for i := 0; i < 4; i++ {
		g.AddNode(fmt.Sprintf("s%d", i), nil)
	}
	g.SetLabels(0, 0)
	g.SetLabels(1, 0)
	g.SetLabels(5, 1)
	g.SetLabels(6, 1)
	co := g.AddRelation("coauthor", false)
	ci := g.AddRelation("cites", true)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {5, 6}, {5, 7}, {6, 8}, {7, 8}} {
		g.AddWeightedEdge(co, e[0], e[1], 1)
	}
	g.AddWeightedEdge(co, 2, 4, 0.5) // the weak tie holding b0
	for _, e := range [][2]int{{1, 0}, {3, 0}, {7, 5}, {8, 6}, {4, 2}} {
		g.AddWeightedEdge(ci, e[0], e[1], 1)
	}
	// venue sits just below cites in every class's base ranking, so a
	// systems-side venue delta can overtake it (the golden rank shift).
	ve := g.AddRelation("venue", false)
	g.AddWeightedEdge(ve, 0, 3, 0.8)
	return g
}

func TestDiffGolden(t *testing.T) {
	reg, err := artifact.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatalf("OpenRegistry: %v", err)
	}
	cfg := itmark.DefaultConfig()
	cfg.Workers = 1
	cfg.Gamma = 0 // no features on the fixture graph
	cfg.Epsilon = 1e-10
	eng, err := stream.NewEngine("toy", diffGraph(), cfg, reg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ctx := context.Background()
	if _, err := eng.Solve(ctx); err != nil {
		t.Fatalf("base solve: %v", err)
	}
	res, err := eng.Apply(ctx, []stream.Delta{
		{Op: stream.OpAdd, From: 4, To: 5, Relation: 0, Weight: 4},
		{Op: stream.OpAdd, From: 5, To: 6, Relation: 2, Weight: 10},
	})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	refA := "sha256:" + res.OldHash
	refB := "toy@sha256:" + res.NewHash
	d, err := diffRefs(reg, refA, refB)
	if err != nil {
		t.Fatalf("diffRefs: %v", err)
	}
	if d.A != refA || d.B != refB {
		t.Fatalf("diff ids %q %q, want %q %q", d.A, d.B, refA, refB)
	}
	if len(d.Flips) == 0 {
		t.Fatalf("the heavy cross-community edge produced no flip")
	}
	// The golden pins the format and the diff content, not the content
	// hashes: those change whenever the canonical encoding does, which
	// is a separate contract with its own tests.
	d.A, d.B = "before", "after"
	var buf bytes.Buffer
	if err := d.Render(&buf); err != nil {
		t.Fatalf("render: %v", err)
	}
	golden := filepath.Join("testdata", "diff.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden fixture %s (run with -update to create): %v", golden, err)
	}
	if buf.String() != string(want) {
		t.Fatalf("diff output drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, buf.String(), want)
	}
}

func TestLoadDeltas(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := write("good.json", `[{"op":"add","from":0,"to":1,"relation":0,"weight":1}]`)
	batch, err := loadDeltas(good)
	if err != nil {
		t.Fatalf("loadDeltas(good): %v", err)
	}
	if len(batch) != 1 || batch[0].Op != stream.OpAdd {
		t.Fatalf("loadDeltas(good) = %+v", batch)
	}
	for name, body := range map[string]string{
		"empty.json":    `[]`,
		"unknown.json":  `[{"op":"add","from":0,"to":1,"relation":0,"weight":1,"extra":true}]`,
		"trailing.json": `[{"op":"add","from":0,"to":1,"relation":0,"weight":1}] []`,
		"badop.json":    `[{"op":"set","from":0,"to":1,"relation":0,"weight":1}]`,
		"object.json":   `{"op":"add"}`,
	} {
		if _, err := loadDeltas(write(name, body)); err == nil {
			t.Errorf("loadDeltas(%s) accepted invalid input", name)
		}
	}
	if _, err := loadDeltas(filepath.Join(dir, "absent.json")); err == nil {
		t.Errorf("loadDeltas accepted a missing file")
	}
}
