package main

// `tmark build` compiles a network into a content-addressed TMARKAR1
// model artifact: the full normalisation (adjacency-tensor counting
// sorts, the cosine feature matrix) runs once here, and every later
// tmarkd start — or `tmark build` of the identical input — reuses the
// blob by hash. Compilation is deterministic, so the printed
// name@sha256:… reference is a reproducible identity, not a timestamp.
//
// Usage:
//
//	tmark build -data SPEC [-model-dir DIR] [-name NAME] [-o FILE]
//	            [-shards M]
//	            [-alpha 0.8] [-gamma 0.6] [-lambda 0.7] [-epsilon 1e-8]
//	            [-maxiter 100] [-no-ica] [-topk K] [-seed N] [-workers N]
//
// SPEC is the shared dataset grammar: a .json/.csv/.coo file or a
// built-in generator name (example, dblp, movies, nus, acm, ring). With
// -model-dir the artifact lands in the registry (blobs/<hash>.tmar) and
// NAME — defaulting to the spec's base name — is tagged to it; serve
// that registry with `tmarkd -model-dir DIR`. With -o the raw artifact
// is (also) written to FILE. The resolved reference prints to stdout.
//
// -shards M (requires -model-dir) additionally partitions the model
// into M per-shard sub-tensor artifacts for the horizontal scale-out
// worker fleet, tagged so `name@sha256:…#shard=i/M` references resolve;
// each shard reference prints to stderr. Serve each with
// `tmarkd -shard-serve -shard-ref REF`.

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"tmark/internal/artifact"
	"tmark/internal/dataset"
	"tmark/internal/shard"
	itmark "tmark/internal/tmark"
)

func runBuild(args []string) {
	fs := flag.NewFlagSet("tmark build", flag.ExitOnError)
	var (
		data     = fs.String("data", "", "network to compile: a .json/.csv/.coo file or a built-in generator name (required)")
		modelDir = fs.String("model-dir", "", "artifact registry to store the model in (the directory tmarkd serves with -model-dir)")
		name     = fs.String("name", "", "reference name to tag in the registry (default: the spec's base name)")
		out      = fs.String("o", "", "also write the raw artifact bytes to this file")
		seed     = fs.Int64("seed", 1, "seed for the built-in synthetic generators")
		alpha    = fs.Float64("alpha", 0.8, "restart probability α")
		gamma    = fs.Float64("gamma", 0.6, "feature-channel scale γ")
		lambda   = fs.Float64("lambda", 0.7, "ICA confidence threshold λ")
		epsilon  = fs.Float64("epsilon", 1e-8, "convergence threshold ε")
		maxiter  = fs.Int("maxiter", 100, "maximum iterations per solve")
		noICA    = fs.Bool("no-ica", false, "disable the ICA label update (TensorRrCc mode)")
		topK     = fs.Int("topk", 0, "sparsify the feature channel to top-K neighbours (0 = dense)")
		workers  = fs.Int("workers", 0, "compute workers for the build (0 = GOMAXPROCS; does not change the artifact)")
		shards   = fs.Int("shards", 0, "also partition the model into this many per-shard artifacts for -shard-serve workers (requires -model-dir)")
	)
	_ = fs.Parse(args)
	if *data == "" {
		fs.Usage()
		os.Exit(2)
	}
	if fs.NArg() > 0 {
		log.Fatalf("build: unexpected arguments: %v", fs.Args())
	}
	if *modelDir == "" && *out == "" {
		log.Fatal("build: nowhere to put the artifact (set -model-dir and/or -o)")
	}
	if *shards > 0 && *modelDir == "" {
		log.Fatal("build: -shards requires -model-dir (shards live in the registry)")
	}

	g, err := dataset.LoadSpec(*data, *seed)
	if err != nil {
		log.Fatalf("build: load %s: %v", *data, err)
	}
	cfg := itmark.Config{
		Alpha: *alpha, Gamma: *gamma, Lambda: *lambda,
		Epsilon: *epsilon, MaxIterations: *maxiter,
		ICAUpdate: !*noICA, FeatureTopK: *topK,
		Workers: *workers,
	}
	blob, hash, err := artifact.Compile(g, cfg)
	if err != nil {
		log.Fatalf("build: compile %s: %v", *data, err)
	}
	fmt.Fprintf(os.Stderr, "compiled %s (%s): %d bytes, config %016x\n",
		*data, g.Stats(), len(blob), itmark.HashConfig(cfg))

	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			log.Fatalf("build: write %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	ref := artifact.Ref{Hash: hash}
	if *modelDir != "" {
		reg, err := artifact.OpenRegistry(*modelDir)
		if err != nil {
			log.Fatalf("build: %v", err)
		}
		if _, err := reg.Put(blob); err != nil {
			log.Fatalf("build: store blob: %v", err)
		}
		tag := *name
		if tag == "" {
			tag = strings.TrimSuffix(filepath.Base(*data), filepath.Ext(*data))
		}
		if !artifact.ValidName(tag) {
			log.Fatalf("build: %q is not a valid model name (use -name; want [A-Za-z0-9._-], not starting with . or -)", tag)
		}
		if err := reg.Tag(tag, hash); err != nil {
			log.Fatalf("build: tag %s: %v", tag, err)
		}
		ref.Name = tag
		fmt.Fprintf(os.Stderr, "stored in %s\n", *modelDir)
		if *shards > 0 {
			// Partition from the just-encoded blob, not the in-memory
			// model: the shards must bind the stored parent bit for bit.
			art, err := artifact.DecodeBytes(blob)
			if err != nil {
				log.Fatalf("build: reopen artifact: %v", err)
			}
			if _, err := shard.PartitionInto(reg, art.Substrate(), hash, *shards); err != nil {
				log.Fatalf("build: partition: %v", err)
			}
			for s := 0; s < *shards; s++ {
				shRef := artifact.Ref{Name: tag, Hash: hash, Shard: s, Of: *shards}
				fmt.Fprintf(os.Stderr, "shard %s\n", shRef.String())
			}
		}
	}
	// The reference is the command's output: pin it in requests or CI.
	fmt.Println(ref.String())
}
