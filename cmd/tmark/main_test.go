package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tmark/pkg/datasets"
	"tmark/pkg/obs"
	"tmark/pkg/tmark"
)

func exampleFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "example.json")
	if err := datasets.Example().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadJSONAndCSV(t *testing.T) {
	path := exampleFile(t)
	g, err := load(path, false)
	if err != nil {
		t.Fatalf("load json: %v", err)
	}
	if g.N() != 4 {
		t.Errorf("N = %d", g.N())
	}

	csvPath := filepath.Join(t.TempDir(), "edges.csv")
	if err := os.WriteFile(csvPath, []byte("from,to,relation\na,b,r\nb,c,r"), 0o644); err != nil {
		t.Fatal(err)
	}
	gc, err := load(csvPath, true)
	if err != nil {
		t.Fatalf("load csv: %v", err)
	}
	if gc.N() != 3 || gc.M() != 1 {
		t.Errorf("csv graph %d/%d", gc.N(), gc.M())
	}

	if _, err := load(filepath.Join(t.TempDir(), "missing"), false); err == nil {
		t.Errorf("missing file should error")
	}
}

func TestBuildReport(t *testing.T) {
	g := datasets.Example()
	cfg := tmark.DefaultConfig()
	cfg.Gamma = 0.5
	model, err := tmark.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := model.Run()
	rep := buildReport(g, model, res, 2)
	if !rep.Converged || !rep.Irreducible {
		t.Errorf("report flags wrong: %+v", rep)
	}
	if rep.Stopped != "" {
		t.Errorf("completed run reported Stopped=%q", rep.Stopped)
	}
	if len(rep.Predictions) != 2 {
		t.Fatalf("predictions = %d, want 2 unlabelled nodes", len(rep.Predictions))
	}
	if rep.Predictions[0].Class != "CV" || rep.Predictions[1].Class != "DM" {
		t.Errorf("predicted classes wrong: %+v", rep.Predictions)
	}
	for class, scores := range rep.LinkRanking {
		if len(scores) != 2 {
			t.Errorf("class %s: %d ranked links, want top-2", class, len(scores))
		}
	}
	// The report must serialise cleanly.
	if _, err := json.Marshal(rep); err != nil {
		t.Errorf("marshal report: %v", err)
	}
}

// TestStatsAndMetricsPath exercises what `-stats -metrics-addr :0` wires
// together: a run collected via WithStats whose breakdown renders, and a
// live /metrics endpoint exposing the solver's registry aggregates in
// Prometheus text format.
func TestStatsAndMetricsPath(t *testing.T) {
	addr, shutdown, err := obs.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(context.Background())

	g := datasets.Example()
	cfg := tmark.DefaultConfig()
	cfg.Gamma = 0.5
	model, err := tmark.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var st tmark.RunStats
	res := model.RunContext(context.Background(), tmark.WithStats(&st))
	if res.Stopped != nil {
		t.Fatalf("Stopped = %v", res.Stopped)
	}
	text := st.String()
	for _, want := range []string{"o_contract", "r_contract", "ica_reseed", "kernel"} {
		if !strings.Contains(text, want) {
			t.Errorf("stats breakdown missing %q:\n%s", want, text)
		}
	}

	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		"tmark_runs_total",
		"tmark_iterations_total",
		"tmark_kernel_o_contract_seconds_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q; got:\n%s", want, metrics)
		}
	}
}

// TestCheckpointName pins the snapshot-file naming: stable for one
// (input, config) pair, distinct across configs so -resume auto can
// never restore a snapshot from different hyper-parameters.
func TestCheckpointName(t *testing.T) {
	g := datasets.Example()
	cfg := tmark.DefaultConfig()
	cfg.Workers = 1
	m1, err := tmark.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := checkpointName("/data/net.json", m1)
	if a != checkpointName("/elsewhere/net.json", m1) {
		t.Errorf("name depends on the directory: %q", a)
	}
	if !strings.HasPrefix(a, "net-") || !strings.HasSuffix(a, ".ckpt") {
		t.Errorf("name %q, want net-<hash>.ckpt", a)
	}

	cfg.Alpha = 0.5
	m2, err := tmark.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b := checkpointName("/data/net.json", m2); a == b {
		t.Errorf("different configs share checkpoint name %q", a)
	}

	// Workers must NOT change the name: a snapshot resumes bitwise
	// identically under any worker count.
	cfg.Alpha = 0.8
	cfg.Workers = 4
	m3, err := tmark.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c := checkpointName("/data/net.json", m3); a != c {
		t.Errorf("worker count changes checkpoint name: %q vs %q", a, c)
	}
}
