package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"tmark/pkg/datasets"
	"tmark/pkg/tmark"
)

// failAfterWriter fails every write once limit bytes went through — the
// shape of a pipe that fills up mid-report.
type failAfterWriter struct {
	limit   int
	written int
}

var errPipeFull = errors.New("pipe full")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.limit {
		n := w.limit - w.written
		if n < 0 {
			n = 0
		}
		w.written = w.limit
		return n, errPipeFull
	}
	w.written += len(p)
	return len(p), nil
}

func exampleReport(t *testing.T) *report {
	t.Helper()
	g := datasets.Example()
	model, err := tmark.New(g, tmark.DefaultConfig())
	if err != nil {
		t.Fatalf("tmark.New: %v", err)
	}
	return buildReport(g, model, model.Run(), 3)
}

func TestPrintReportWritesEverything(t *testing.T) {
	rep := exampleReport(t)
	var buf bytes.Buffer
	if err := printReport(&buf, datasets.Example(), rep); err != nil {
		t.Fatalf("printReport: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"network:", "predictions for unlabelled nodes:", "link-type relevance per class:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestPrintReportPropagatesWriteErrors pins the fix for the silently
// truncated report: a write failure must come back to main (which exits
// non-zero), not vanish inside unchecked fmt.Printf returns.
func TestPrintReportPropagatesWriteErrors(t *testing.T) {
	rep := exampleReport(t)
	err := printReport(&failAfterWriter{limit: 20}, datasets.Example(), rep)
	if !errors.Is(err, errPipeFull) {
		t.Fatalf("printReport returned %v, want %v", err, errPipeFull)
	}
}

func TestErrWriterLatchesFirstError(t *testing.T) {
	ew := &errWriter{w: &failAfterWriter{limit: 4}}
	if _, err := ew.Write([]byte("ok")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if _, err := ew.Write([]byte("overflow")); !errors.Is(err, errPipeFull) {
		t.Fatalf("overflowing write: %v, want %v", err, errPipeFull)
	}
	// Later writes keep failing with the latched error, even though the
	// underlying writer would accept more short writes.
	if _, err := ew.Write([]byte("x")); !errors.Is(err, errPipeFull) {
		t.Fatalf("post-error write: %v, want latched %v", err, errPipeFull)
	}
	if !errors.Is(ew.err, errPipeFull) {
		t.Fatalf("latched err = %v", ew.err)
	}
}
