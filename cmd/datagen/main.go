// Command datagen writes the synthetic evaluation networks to JSON files
// that cmd/tmark (or any consumer of the hin codec) can load.
//
// Usage:
//
//	datagen -dataset dblp|movies|nus1|nus2|acm|ring|example -out network.json
//	        [-seed N] [-scale 1.0] [-mask 0.3]
//
// -mask keeps that fraction of node labels (per class, stratified) and
// strips the rest, producing a ready-made semi-supervised problem; 0 keeps
// every label.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"tmark/internal/dataset"
	"tmark/internal/eval"
	"tmark/internal/hin"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	var (
		name  = flag.String("dataset", "", "dblp, movies, nus1, nus2, acm, ring or example (required)")
		out   = flag.String("out", "", "output path (required)")
		seed  = flag.Int64("seed", 1, "generator seed")
		scale = flag.Float64("scale", 1, "size multiplier")
		mask  = flag.Float64("mask", 0, "fraction of labels to keep (0 = keep all)")
	)
	flag.Parse()
	if *name == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	g, err := build(*name, *seed, *scale)
	if err != nil {
		log.Fatal(err)
	}
	if *mask > 0 && *mask < 1 {
		split := eval.StratifiedSplit(g, *mask, rand.New(rand.NewSource(*seed)))
		g, _ = eval.MaskLabels(g, split)
	}
	if err := g.SaveFile(*out); err != nil {
		log.Fatalf("save: %v", err)
	}
	fmt.Printf("wrote %s: %v\n", *out, g.Stats())
}

func build(name string, seed int64, scale float64) (*hin.Graph, error) {
	scaled := func(base int) int {
		n := int(float64(base) * scale)
		if n < 10 {
			n = 10
		}
		return n
	}
	switch name {
	case "dblp":
		cfg := dataset.DefaultDBLPConfig(seed)
		cfg.AuthorsPerArea = scaled(cfg.AuthorsPerArea)
		return dataset.DBLP(cfg), nil
	case "movies":
		cfg := dataset.DefaultMoviesConfig(seed)
		cfg.MoviesPerGenre = scaled(cfg.MoviesPerGenre)
		cfg.Directors = scaled(cfg.Directors)
		return dataset.Movies(cfg), nil
	case "nus1", "nus2":
		cfg := dataset.DefaultNUSConfig(seed)
		cfg.Images = scaled(cfg.Images)
		tags := dataset.Tagset1()
		if name == "nus2" {
			tags = dataset.Tagset2()
		}
		return dataset.NUS(cfg, tags), nil
	case "acm":
		cfg := dataset.DefaultACMConfig(seed)
		cfg.Publications = scaled(cfg.Publications)
		cfg.Citations = scaled(cfg.Citations)
		return dataset.ACM(cfg), nil
	case "ring":
		cfg := dataset.DefaultRingConfig(seed)
		cfg.ArcLength = scaled(cfg.ArcLength)
		return dataset.Ring(cfg), nil
	case "example":
		return dataset.Example(), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}
