package main

import "testing"

func TestBuildDatasets(t *testing.T) {
	cases := map[string]struct {
		n, m, q int
	}{
		"dblp":    {400, 20, 4},
		"movies":  {400, 90, 5},
		"nus1":    {400, 41, 2},
		"nus2":    {400, 41, 2},
		"acm":     {360, 6, 6},
		"example": {4, 3, 2},
	}
	for name, want := range cases {
		g, err := build(name, 1, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.N() != want.n || g.M() != want.m || g.Q() != want.q {
			t.Errorf("%s: shape %d/%d/%d, want %d/%d/%d", name, g.N(), g.M(), g.Q(), want.n, want.m, want.q)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", name, err)
		}
	}
}

func TestBuildScale(t *testing.T) {
	g, err := build("dblp", 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 200 {
		t.Errorf("scaled N = %d, want 200", g.N())
	}
	tiny, err := build("dblp", 1, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.N() < 40 { // floor of 10 per area
		t.Errorf("scale floor broken: N = %d", tiny.N())
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := build("nope", 1, 1); err == nil {
		t.Errorf("unknown dataset should error")
	}
}
