package main

import (
	"math/rand"
	"path/filepath"
	"testing"

	"tmark/internal/baselines"
	"tmark/internal/dataset"
	"tmark/internal/eval"
	"tmark/internal/hin"
	"tmark/internal/rank"
	"tmark/internal/tmark"
)

// TestPipelineSynthToClassification runs the complete user journey:
// generate a network, persist it, reload it, mask labels, classify with
// T-Mark, and grade the result.
func TestPipelineSynthToClassification(t *testing.T) {
	g, err := dataset.Synth(dataset.SynthConfig{
		Seed:          11,
		Classes:       []string{"red", "green", "blue"},
		NodesPerClass: 50,
		Vocab:         45,
		TokensPerNode: 12,
		FeatureFocus:  0.55,
		Relations: []dataset.RelationSpec{
			{Name: "strong", Homophily: 0.85, Edges: 500},
			{Name: "weak", Homophily: 0.5, Edges: 250},
			{Name: "noise", Homophily: 0, Edges: 200, Directed: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "synth.json")
	if err := g.SaveFile(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := hin.LoadFile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.Stats().String() != g.Stats().String() {
		t.Fatalf("persistence changed the graph: %v vs %v", loaded.Stats(), g.Stats())
	}

	rng := rand.New(rand.NewSource(3))
	split := eval.StratifiedSplit(loaded, 0.2, rng)
	masked, truth := eval.MaskLabels(loaded, split)

	model, err := tmark.New(masked, tmark.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := model.Run()
	acc := eval.Accuracy(res.Predict(), eval.PrimaryTruth(truth), split.Test)
	if acc < 0.7 {
		t.Errorf("end-to-end accuracy %.3f, want >= 0.7 on the homophilous synth", acc)
	}

	// The link ranking must put the designed strong relation above the
	// designed noise relation for every class.
	for c := 0; c < loaded.Q(); c++ {
		var strongScore, noiseScore float64
		for _, rs := range res.LinkRanking(c) {
			switch masked.Relations[rs.Relation].Name {
			case "strong":
				strongScore = rs.Score
			case "noise":
				noiseScore = rs.Score
			}
		}
		if strongScore <= noiseScore {
			t.Errorf("class %d: strong link (%.3f) not ranked above noise (%.3f)", c, strongScore, noiseScore)
		}
	}

	// Warm restart after an incremental label: same predictions.
	masked.SetLabels(1, loaded.PrimaryLabel(1))
	model2, err := tmark.New(masked, tmark.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	warm := model2.RunWarm(res)
	if warmAcc := eval.Accuracy(warm.Predict(), eval.PrimaryTruth(truth), split.Test); warmAcc < acc-0.05 {
		t.Errorf("warm incremental accuracy %.3f regressed from %.3f", warmAcc, acc)
	}
}

// TestPipelineMethodComparison runs the statistical-comparison journey:
// sweep two methods over trials and verify the t-test plumbing.
func TestPipelineMethodComparison(t *testing.T) {
	cfg := dataset.DefaultDBLPConfig(5)
	cfg.AuthorsPerArea = 40
	full := dataset.DBLP(cfg)
	run := func(m baselines.Method) eval.TrialStats {
		return eval.RunTrials(4, 9, func(trial int, rng *rand.Rand) float64 {
			split := eval.StratifiedSplit(full, 0.3, rng)
			masked, truth := eval.MaskLabels(full, split)
			scores, err := m.Scores(masked, rng)
			if err != nil {
				t.Fatal(err)
			}
			return eval.Accuracy(baselines.Predict(scores), eval.PrimaryTruth(truth), split.Test)
		})
	}
	tm := run(baselines.NewTMark())
	em := run(baselines.NewEMR())
	tt, _ := eval.PairedTTest(tm.Values, em.Values)
	if tm.Mean > em.Mean && tt <= 0 {
		t.Errorf("t statistic %v contradicts mean ordering %.3f vs %.3f", tt, tm.Mean, em.Mean)
	}
}

// TestPipelineUnsupervisedThenSupervised contrasts MultiRank's volume-
// driven link ranking with T-Mark's class-aware one on the same network.
func TestPipelineUnsupervisedThenSupervised(t *testing.T) {
	cfg := dataset.DefaultDBLPConfig(7)
	cfg.AuthorsPerArea = 40
	g := dataset.DBLP(cfg)
	mr, err := rank.MultiRank(g, rank.Options{Restart: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !mr.Converged {
		t.Fatalf("MultiRank did not converge")
	}
	// The cross venues carry the most traffic, so MultiRank should rank at
	// least one of them in its global top-5.
	crossTop := false
	for _, k := range mr.TopRelations(5) {
		switch g.Relations[k].Name {
		case "CIKM", "WWW", "CVPR":
			crossTop = true
		}
	}
	if !crossTop {
		t.Errorf("expected a cross venue in MultiRank's top-5 (volume-driven)")
	}
	// T-Mark, with labels, must NOT rank a cross venue first for any area.
	model, err := tmark.New(g, tmark.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := model.Run()
	for c := 0; c < g.Q(); c++ {
		top := g.Relations[res.LinkRanking(c)[0].Relation].Name
		if top == "CIKM" || top == "WWW" || top == "CVPR" {
			t.Errorf("class %d: T-Mark ranked cross venue %s first", c, top)
		}
	}
}
