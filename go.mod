module tmark

go 1.22
